package check

import (
	"time"

	"rmcast/internal/core"
	"rmcast/internal/packet"
	"rmcast/internal/trace"
)

// ringChecker verifies the ring protocol's rotating-responsibility rule:
// receiver k acknowledges only because its rotation slot (k-1 mod N) is
// inside its acknowledged prefix, or because it holds the last packet
// (which everyone acknowledges). Since ring acks are cumulative — cum
// equals the in-order prefix, enforced by the window checker — a
// receiver's slot packet is in its prefix exactly when cum >= k.
type ringChecker struct {
	violations
	recvs *recvShadows
}

func newRingChecker() *ringChecker {
	return &ringChecker{violations: violations{name: "ring"}}
}

func (c *ringChecker) Begin(info *RunInfo) {
	c.recvs = newRecvShadows(info)
}

func (c *ringChecker) Observe(e trace.Event) {
	c.recvs.observe(e)
	if e.Node == 0 || e.Type != packet.TypeAck ||
		(e.Dir != trace.Send && e.Dir != trace.SendMC) {
		return
	}
	if e.Dir != trace.Send || e.Peer != int(core.SenderID) {
		c.addf("receiver %d sent a ring ack somewhere other than the sender (peer %d)",
			e.Node, e.Peer)
		return
	}
	if e.Seq < uint32(e.Node) && !c.recvs.at(e.Node).gotLast {
		c.addf("receiver %d acknowledged %d out of turn: its rotation slot %d is not covered and it does not hold the last packet",
			e.Node, e.Seq, e.Node-1)
	}
}

func (c *ringChecker) Finish(*RunInfo) []Violation { return c.take() }

// treeShadow mirrors one tree receiver's chain view: who it currently
// believes its predecessor and successor are (from the eject
// announcements it has itself received), and the highest aggregate its
// successor has reported to it.
type treeShadow struct {
	active      bool
	selfEjected bool
	deadView    map[core.NodeID]bool
	pred        core.NodeID
	succ        core.NodeID
	hasSucc     bool
	succAck     uint32
}

// treeChecker verifies the tree protocol's relay causality:
//
//   - every chain ack goes to the node's current predecessor under the
//     spliced membership it has learned of;
//   - a node never reports an aggregate beyond what its current
//     successor actually reported to it (succAck resets when a splice
//     hands it a new successor, exactly as the receiver resets).
//
// The aggregate's other bound — the node's own reception prefix — is
// enforced by the window checker.
type treeChecker struct {
	violations
	tree core.FlatTree
	m    map[int]*treeShadow
}

func newTreeChecker() *treeChecker {
	return &treeChecker{violations: violations{name: "tree"}}
}

func (c *treeChecker) Begin(info *RunInfo) {
	c.tree = core.NewFlatTree(info.Proto.NumReceivers, info.Proto.TreeHeight)
	c.m = make(map[int]*treeShadow, info.Proto.NumReceivers)
}

func (c *treeChecker) at(node int) *treeShadow {
	sh := c.m[node]
	if sh == nil {
		rank := core.NodeID(node)
		sh = &treeShadow{deadView: make(map[core.NodeID]bool), pred: c.tree.Pred(rank)}
		sh.succ, sh.hasSucc = c.tree.Succ(rank)
		c.m[node] = sh
	}
	return sh
}

func (c *treeChecker) Observe(e trace.Event) {
	if e.Node == 0 {
		return
	}
	sh := c.at(e.Node)
	if e.Dir == trace.Recv {
		switch e.Type {
		case packet.TypeAllocReq:
			if !sh.active {
				sh.active = true
				sh.succAck = 0
			}
		case packet.TypeEject:
			rank := core.NodeID(e.Aux)
			if rank == core.NodeID(e.Node) {
				sh.selfEjected = true
				return
			}
			if rank < 1 || sh.deadView[rank] {
				return
			}
			sh.deadView[rank] = true
			id := core.NodeID(e.Node)
			sh.pred = c.tree.PredAlive(id, sh.deadView)
			succ, has := c.tree.SuccAlive(id, sh.deadView)
			if sh.active && (has != sh.hasSucc || succ != sh.succ) {
				// New downstream: the old successor's reports no longer
				// bound the chain (Receiver.relink resets the same way).
				sh.succAck = 0
			}
			sh.succ, sh.hasSucc = succ, has
		case packet.TypeAck:
			if sh.active && sh.hasSucc && e.Peer == int(sh.succ) && e.Seq > sh.succAck {
				sh.succAck = e.Seq
			}
		}
		return
	}
	if e.Dir == trace.Send || e.Dir == trace.SendMC {
		switch e.Type {
		case packet.TypeAck:
			if e.Peer != int(sh.pred) {
				c.addf("receiver %d sent its chain ack to %d but its predecessor under the spliced membership is %d",
					e.Node, e.Peer, sh.pred)
			}
			if sh.hasSucc && e.Seq > sh.succAck {
				c.addf("receiver %d reported aggregate %d beyond its successor %d's highest report %d",
					e.Node, e.Seq, sh.succ, sh.succAck)
			}
		case packet.TypePong:
			if sh.hasSucc && e.Seq > sh.succAck {
				c.addf("receiver %d answered a probe with aggregate %d beyond its successor %d's highest report %d",
					e.Node, e.Seq, sh.succ, sh.succAck)
			}
		}
	}
}

func (c *treeChecker) Finish(*RunInfo) []Violation { return c.take() }

// ghostChecker verifies ejection silence: a receiver that has received
// the sender's announcement of its own ejection never transmits again
// (it may keep listening — that is how a wrongly-ejected stall victim
// still assembles the message — but a talking ghost would corrupt the
// spliced membership's bookkeeping).
type ghostChecker struct {
	violations
	silenced map[int]time.Duration
}

func newGhostChecker() *ghostChecker {
	return &ghostChecker{violations: violations{name: "ghost"}}
}

func (c *ghostChecker) Begin(*RunInfo) {
	c.silenced = make(map[int]time.Duration)
}

func (c *ghostChecker) Observe(e trace.Event) {
	if e.Node == 0 {
		return
	}
	if e.Dir == trace.Recv {
		if e.Type == packet.TypeEject && int(e.Aux) == e.Node {
			if _, ok := c.silenced[e.Node]; !ok {
				c.silenced[e.Node] = e.At
			}
		}
		return
	}
	if e.Dir == trace.Send || e.Dir == trace.SendMC {
		if e.Type == packet.TypeHello {
			// Hellos are transport-level discovery/liveness traffic, not
			// protocol traffic: a live node keeps announcing itself after
			// ejection (it may join later sessions), and the silence
			// contract covers only the session's protocol packets.
			return
		}
		if at, ok := c.silenced[e.Node]; ok {
			c.addf("ejected receiver %d sent %s at t=%v after learning of its ejection at t=%v",
				e.Node, e.Type, e.At, at)
		}
	}
}

func (c *ghostChecker) Finish(*RunInfo) []Violation { return c.take() }
