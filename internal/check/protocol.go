package check

import (
	"time"

	"rmcast/internal/core"
	"rmcast/internal/packet"
	"rmcast/internal/trace"
)

// ringChecker verifies the ring protocol's rotating-responsibility rule:
// a receiver acknowledges only because one of its rotation slots (its
// position within its ring, every ring-span packets — the whole group
// with a single ring) is inside its acknowledged prefix, or because it
// holds the last packet (which everyone acknowledges). Since ring acks
// are cumulative — cum equals the in-order prefix, enforced by the
// window checker — a receiver's first slot is in its prefix exactly
// when cum >= RingFirstSlot+1.
type ringChecker struct {
	violations
	recvs *recvShadows
	cfg   core.Config
}

func newRingChecker() *ringChecker {
	return &ringChecker{violations: violations{name: "ring"}}
}

func (c *ringChecker) Begin(info *RunInfo) {
	c.recvs = newRecvShadows(info)
	c.cfg = info.Proto
}

func (c *ringChecker) Observe(e trace.Event) {
	c.recvs.observe(e)
	if e.Node == 0 || e.Type != packet.TypeAck ||
		(e.Dir != trace.Send && e.Dir != trace.SendMC) {
		return
	}
	if e.Dir != trace.Send || e.Peer != int(core.SenderID) {
		c.addf("receiver %d sent a ring ack somewhere other than the sender (peer %d)",
			e.Node, e.Peer)
		return
	}
	if first := c.cfg.RingFirstSlot(core.NodeID(e.Node)); e.Seq < first+1 && !c.recvs.at(e.Node).gotLast {
		c.addf("receiver %d acknowledged %d out of turn: its first rotation slot %d is not covered and it does not hold the last packet",
			e.Node, e.Seq, first)
	}
}

func (c *ringChecker) Finish(*RunInfo) []Violation { return c.take() }

// treeShadow mirrors one tree receiver's chain view: who it currently
// believes its predecessor and successor are (from the eject
// announcements it has itself received), and the highest aggregate its
// successor has reported to it.
type treeShadow struct {
	active      bool
	selfEjected bool
	joined      bool // processed its own TypeJoinOK
	deadView    map[core.NodeID]bool
	pred        core.NodeID
	succ        core.NodeID
	hasSucc     bool
	succAck     uint32
	// liveMark mirrors Receiver.liveMark: a mid-chain joiner may report
	// its own prefix straight to the sender until it crosses this mark.
	liveMark uint32
}

// treeChecker verifies the tree protocol's relay causality:
//
//   - every chain ack goes to the node's current predecessor under the
//     spliced membership it has learned of;
//   - a node never reports an aggregate beyond what its current
//     successor actually reported to it (succAck resets when a splice
//     hands it a new successor, exactly as the receiver resets).
//
// The aggregate's other bound — the node's own reception prefix — is
// enforced by the window checker.
type treeChecker struct {
	violations
	tree    core.FlatTree
	m       map[int]*treeShadow
	absent  []core.NodeID
	count   uint32
	winSize uint32
	// senderOut mirrors the sender's out-set (dead ∪ still-absent) from
	// its announcements: the checker's stand-in for the membership list
	// a TypeJoinOK carries in its payload, which the trace cannot show.
	senderOut map[core.NodeID]bool
}

func newTreeChecker() *treeChecker {
	return &treeChecker{violations: violations{name: "tree"}}
}

func (c *treeChecker) Begin(info *RunInfo) {
	c.tree = info.Proto.Tree()
	c.m = make(map[int]*treeShadow, info.Proto.NumReceivers)
	c.absent = info.Proto.Absent
	c.count = info.Count
	c.winSize = uint32(info.Proto.WindowSize)
	c.senderOut = make(map[core.NodeID]bool, len(c.absent))
	for _, a := range c.absent {
		c.senderOut[a] = true
	}
}

func (c *treeChecker) at(node int) *treeShadow {
	sh := c.m[node]
	if sh == nil {
		rank := core.NodeID(node)
		sh = &treeShadow{deadView: make(map[core.NodeID]bool)}
		// Absent ranks start outside every node's chain view, exactly
		// as NewReceiver seeds them (a join announcement splices them
		// back in).
		for _, a := range c.absent {
			if a != rank {
				sh.deadView[a] = true
			}
		}
		sh.pred = c.tree.PredAlive(rank, sh.deadView)
		sh.succ, sh.hasSucc = c.tree.SuccAlive(rank, sh.deadView)
		c.m[node] = sh
	}
	return sh
}

// relink recomputes a shadow's chain links after a membership change,
// mirroring Receiver.relink's succAck reset.
func (c *treeChecker) relink(node int, sh *treeShadow) {
	id := core.NodeID(node)
	sh.pred = c.tree.PredAlive(id, sh.deadView)
	succ, has := c.tree.SuccAlive(id, sh.deadView)
	if sh.active && (has != sh.hasSucc || succ != sh.succ) {
		// New downstream: the old successor's reports no longer bound
		// the chain (Receiver.relink resets the same way).
		sh.succAck = 0
	}
	sh.succ, sh.hasSucc = succ, has
}

func (c *treeChecker) Observe(e trace.Event) {
	if e.Node == 0 {
		if e.Dir == trace.SendMC {
			switch e.Type {
			case packet.TypeEject, packet.TypeLeft:
				c.senderOut[core.NodeID(e.Aux)] = true
			case packet.TypeJoined:
				delete(c.senderOut, core.NodeID(e.Aux))
			}
		}
		return
	}
	sh := c.at(e.Node)
	if e.Dir == trace.Recv {
		switch e.Type {
		case packet.TypeAllocReq:
			if !sh.active {
				sh.active = true
				sh.succAck = 0
				sh.liveMark = 0
			}
		case packet.TypeJoinOK:
			// Our own admission: adopt the membership view the answer
			// carries (mirrored from the sender's announcements) and
			// activate when a session is in flight, as onJoinOK does.
			// Duplicate answers are ignored, like the real receiver.
			if sh.joined {
				return
			}
			sh.joined = true
			for rank := range c.senderOut {
				if rank != core.NodeID(e.Node) {
					sh.deadView[rank] = true
				}
			}
			if e.Flags&packet.FlagActive != 0 {
				sh.active = true
				sh.succAck = 0
			}
			c.relink(e.Node, sh)
			if e.Flags&packet.FlagActive != 0 && sh.pred != core.SenderID {
				// Spliced mid-chain: the joiner self-reports to the sender
				// until its coverage passes the handover mark, exactly as
				// Receiver.maybeDirectAck does.
				mark := e.Seq + c.winSize
				if mark > c.count {
					mark = c.count
				}
				sh.liveMark = mark
			}
		case packet.TypeEject, packet.TypeLeft:
			rank := core.NodeID(e.Aux)
			if rank == core.NodeID(e.Node) {
				sh.selfEjected = true
				return
			}
			if rank < 1 || sh.deadView[rank] {
				return
			}
			sh.deadView[rank] = true
			c.relink(e.Node, sh)
		case packet.TypeJoined:
			rank := core.NodeID(e.Aux)
			if rank == core.NodeID(e.Node) || !sh.deadView[rank] {
				return
			}
			delete(sh.deadView, rank)
			c.relink(e.Node, sh)
		case packet.TypeAck:
			if sh.active && sh.hasSucc && e.Peer == int(sh.succ) && e.Seq > sh.succAck {
				sh.succAck = e.Seq
			}
		}
		return
	}
	if e.Dir == trace.Send || e.Dir == trace.SendMC {
		switch e.Type {
		case packet.TypeAck:
			if sh.liveMark > 0 && e.Peer == int(core.SenderID) && sh.pred != core.SenderID {
				// Handover-window self-report (Receiver.maybeDirectAck):
				// goes straight to the sender and carries the joiner's own
				// prefix, not the chain aggregate — the window checker
				// bounds it against the reception stream.
				if e.Seq >= sh.liveMark {
					sh.liveMark = 0
				}
				return
			}
			if e.Peer != int(sh.pred) {
				c.addf("receiver %d sent its chain ack to %d but its predecessor under the spliced membership is %d",
					e.Node, e.Peer, sh.pred)
			}
			if sh.hasSucc && e.Seq > sh.succAck {
				c.addf("receiver %d reported aggregate %d beyond its successor %d's highest report %d",
					e.Node, e.Seq, sh.succ, sh.succAck)
			}
		case packet.TypePong:
			if sh.hasSucc && e.Seq > sh.succAck {
				c.addf("receiver %d answered a probe with aggregate %d beyond its successor %d's highest report %d",
					e.Node, e.Seq, sh.succ, sh.succAck)
			}
		}
	}
}

func (c *treeChecker) Finish(*RunInfo) []Violation { return c.take() }

// ghostChecker verifies departure silence: a receiver that has received
// the sender's announcement of its own ejection — or of its own granted
// graceful leave — never transmits again (it may keep listening — that
// is how a wrongly-ejected stall victim still assembles the message —
// but a talking ghost would corrupt the spliced membership's
// bookkeeping).
type ghostChecker struct {
	violations
	silenced map[int]time.Duration
}

func newGhostChecker() *ghostChecker {
	return &ghostChecker{violations: violations{name: "ghost"}}
}

func (c *ghostChecker) Begin(*RunInfo) {
	c.silenced = make(map[int]time.Duration)
}

func (c *ghostChecker) Observe(e trace.Event) {
	if e.Node == 0 {
		return
	}
	if e.Dir == trace.Recv {
		if (e.Type == packet.TypeEject || e.Type == packet.TypeLeft) && int(e.Aux) == e.Node {
			if _, ok := c.silenced[e.Node]; !ok {
				c.silenced[e.Node] = e.At
			}
		}
		return
	}
	if e.Dir == trace.Send || e.Dir == trace.SendMC {
		if e.Type == packet.TypeHello {
			// Hellos are transport-level discovery/liveness traffic, not
			// protocol traffic: a live node keeps announcing itself after
			// ejection (it may join later sessions), and the silence
			// contract covers only the session's protocol packets.
			return
		}
		if at, ok := c.silenced[e.Node]; ok {
			c.addf("ejected receiver %d sent %s at t=%v after learning of its ejection at t=%v",
				e.Node, e.Type, e.At, at)
		}
	}
}

func (c *ghostChecker) Finish(*RunInfo) []Violation { return c.take() }
