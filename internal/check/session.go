package check

import (
	"rmcast/internal/packet"
	"rmcast/internal/trace"
)

// sessionChecker verifies the contracts the multi-session layer adds on
// top of a single transfer's trace:
//
//   - tag isolation: every protocol packet the session's endpoints send
//     or receive carries the session's own tag in the high half of its
//     message id (MsgID >> 16 == SessionTag) and a nonzero message
//     ordinal in the low half — a packet tagged for another session
//     appearing in this session's stream is cross-session bleed, the
//     demultiplexing failure concurrent sessions must never exhibit;
//   - rate-control window bound: with the AIMD controller on, the
//     sender's first transmissions never overrun base + Rate.MaxWindow.
//     The congestion window lives in [MinWindow, MaxWindow], and the
//     pump only opens new sequences while the outstanding span is below
//     it, so a first transmission past that bound means the controller's
//     clamp failed.
//
// Exactly-once delivery per session needs no new machinery: each
// session's stream runs through its own full checker set (see
// ExecuteMulti), so the delivery checker already enforces it per
// session.
type sessionChecker struct {
	violations
	tag       uint32
	rateOn    bool
	maxWin    uint64
	count     uint32
	sender    *senderShadow
	nextFirst uint32
}

func newSessionChecker() *sessionChecker {
	return &sessionChecker{violations: violations{name: "session"}}
}

// taggedTypes are the packet types that always carry the session's
// message id. Join requests (sent before the joiner knows the session)
// and leave announcements (echoing whatever message the receiver last
// saw, possibly none) are exempt; hellos belong to the transport.
func tagged(t packet.Type) bool {
	switch t {
	case packet.TypeAllocReq, packet.TypeAllocOK, packet.TypeData,
		packet.TypeAck, packet.TypeNak, packet.TypePong:
		return true
	}
	return false
}

func (c *sessionChecker) Begin(info *RunInfo) {
	c.tag = info.Proto.SessionTag
	c.rateOn = info.Proto.Rate.Enabled
	c.maxWin = uint64(info.Proto.Rate.MaxWindow)
	c.count = info.Count
	c.sender = newSenderShadow(info)
}

func (c *sessionChecker) Observe(e trace.Event) {
	if tagged(e.Type) {
		if e.MsgID>>16 != c.tag {
			c.addf("cross-session bleed: node %d saw %s msg=%d tagged %d, want session tag %d",
				e.Node, e.Type, e.MsgID, e.MsgID>>16, c.tag)
		} else if e.MsgID&0xFFFF == 0 {
			c.addf("node %d saw %s with zero message ordinal (msg=%d)", e.Node, e.Type, e.MsgID)
		}
	}
	if e.Node != 0 {
		return
	}
	if c.rateOn && e.Dir == trace.SendMC && e.Type == packet.TypeData && e.Seq < c.count {
		// Bound first transmissions by the rate ceiling, against the
		// acknowledgment-derived base — same shadow discipline as the
		// window checker, tighter limit.
		if e.Seq >= c.nextFirst {
			if uint64(e.Seq) >= uint64(c.sender.base)+c.maxWin {
				c.addf("rate window overrun: first transmission of seq %d with base %d and Rate.MaxWindow %d",
					e.Seq, c.sender.base, c.maxWin)
			}
			c.nextFirst = e.Seq + 1
		}
	}
	c.sender.observe(e)
}

func (c *sessionChecker) Finish(*RunInfo) []Violation { return c.take() }
