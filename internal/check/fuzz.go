package check

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"time"

	"rmcast/internal/cluster"
	"rmcast/internal/core"
	"rmcast/internal/ethernet"
	"rmcast/internal/exp"
	"rmcast/internal/faults"
	"rmcast/internal/rng"
	"rmcast/internal/session"
	"rmcast/internal/topo"
)

// Case is one point of the chaos harness's configuration space,
// deterministically derived from (Seed, Index): rerunning DeriveCase
// with the same pair rebuilds the identical scenario, which is what
// `rmcheck -repro seed:index` does.
type Case struct {
	Seed    uint64
	Index   int
	Cluster cluster.Config
	Proto   core.Config
	MsgSize int

	// Contention block — zero for classic single-session cases. Drawn
	// from its own rng stream (see DeriveCase), so adding it moved no
	// classic draw off its stream position: the single-session view of
	// every (seed, index) is byte-identical to what it always was.
	// Sessions > 1 runs the case as that many concurrent sessions
	// (each with the classic receiver count) through the session layer.
	Sessions int
	Overlap  float64
	Stagger  time.Duration
	// CrossFlows background unicast flows of CrossSize bytes, repeated
	// CrossRepeat times each, ride alongside the sessions.
	CrossFlows  int
	CrossSize   int
	CrossRepeat int
}

// classic returns the case's single-session view: the contention block
// and the rate controller (both drawn from the contention stream)
// removed. The pinned sweep digests hash this view, proving the classic
// scenario space never moves when contention draws change.
func (c Case) classic() Case {
	c.Sessions, c.Overlap, c.Stagger = 0, 0, 0
	c.CrossFlows, c.CrossSize, c.CrossRepeat = 0, 0, 0
	c.Proto.Rate = core.RateControl{}
	return c
}

// Repro is the case's reproduction handle, accepted by ParseRepro and
// `rmcheck -repro`.
func (c Case) Repro() string { return fmt.Sprintf("%d:%d", c.Seed, c.Index) }

// ParseRepro inverts Repro.
func ParseRepro(s string) (seed uint64, index int, err error) {
	a, b, ok := strings.Cut(s, ":")
	if !ok {
		return 0, 0, fmt.Errorf("check: repro %q is not seed:case", s)
	}
	seed, err = strconv.ParseUint(a, 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("check: bad repro seed %q: %v", a, err)
	}
	index, err = strconv.Atoi(b)
	if err != nil || index < 0 {
		return 0, 0, fmt.Errorf("check: bad repro case index %q", b)
	}
	return seed, index, nil
}

// String is a one-line summary of the scenario for reports.
func (c Case) String() string {
	var b strings.Builder
	topoStr := c.Cluster.Topology.String()
	if c.Cluster.Topo != nil {
		topoStr = c.Cluster.Topo.String()
	}
	fmt.Fprintf(&b, "%v n=%d %s pkt=%d msg=%d W=%d",
		c.Proto.Protocol, c.Cluster.NumReceivers, topoStr,
		c.Proto.PacketSize, c.MsgSize, c.Proto.WindowSize)
	if c.Proto.Protocol == core.ProtoNAK {
		fmt.Fprintf(&b, " poll=%d", c.Proto.PollInterval)
	}
	if c.Proto.Protocol == core.ProtoTree {
		fmt.Fprintf(&b, " H=%d", c.Proto.TreeHeight)
		if c.Proto.TreeLayout == core.TreeBlocked {
			b.WriteString(" blocked")
		}
	}
	if c.Proto.NumRings > 1 {
		fmt.Fprintf(&b, " rings=%d", c.Proto.NumRings)
	}
	if c.Proto.JoinCatchup == core.CatchupPeer {
		b.WriteString(" catchup=peer")
	}
	if c.Proto.SelectiveRepeat {
		b.WriteString(" selrep")
	}
	if c.Proto.NakSuppression {
		b.WriteString(" naksupp")
	}
	if c.Proto.PaceInterval > 0 {
		fmt.Fprintf(&b, " pace=%v", c.Proto.PaceInterval)
	}
	if c.Cluster.LossRate > 0 {
		fmt.Fprintf(&b, " loss=%.3f", c.Cluster.LossRate)
	}
	if c.Cluster.RecvBuf != 64*1024 {
		fmt.Fprintf(&b, " rcvbuf=%d", c.Cluster.RecvBuf)
	}
	if c.Proto.MaxRetries > 0 {
		fmt.Fprintf(&b, " retries=%d", c.Proto.MaxRetries)
	}
	if c.Proto.SessionDeadline > 0 {
		fmt.Fprintf(&b, " sdl=%v", c.Proto.SessionDeadline)
	}
	if c.Cluster.Faults != nil {
		fmt.Fprintf(&b, " faults=%v", c.Cluster.Faults)
	}
	if c.Proto.Rate.Enabled {
		b.WriteString(" rate")
		if c.Proto.Rate.LeaderPacing {
			b.WriteString("+lp")
		}
	}
	if c.Sessions > 1 {
		fmt.Fprintf(&b, " sessions=%d ov=%.2f", c.Sessions, c.Overlap)
		if c.Stagger > 0 {
			fmt.Fprintf(&b, " stagger=%v", c.Stagger)
		}
		if c.CrossFlows > 0 {
			fmt.Fprintf(&b, " cross=%dx%d*%d", c.CrossFlows, c.CrossSize, c.CrossRepeat)
		}
	}
	return b.String()
}

// caseDeadline bounds one case's virtual time: generous enough for a
// lossy Go-Back-N transfer to finish, tight enough that a deliberately
// wedged session (crashed receiver, no failure detection) costs only a
// handful of backed-off timer events.
const caseDeadline = 15 * time.Second

// DeriveCase expands (seed, index) into a full scenario: protocol
// family, group size, message and packet sizes, window/poll/tree
// parameters, topology, loss, small-buffer pressure, and a fault
// schedule — every choice drawn from one deterministic rng stream.
//
// The derivation keeps two soundness bounds so the retransmit checker's
// lossless rule stays valid: packet sizes and poll intervals are small
// enough that the protocol's longest natural acknowledgment silence
// stays far below the default retransmission timeout, and timeouts are
// never configured below their defaults.
func DeriveCase(seed uint64, index int) Case {
	r := rng.New(rng.Mix(seed, uint64(index), 0xC8EC5FA2))

	var proto core.Protocol
	if r.Bool(0.1) {
		proto = core.ProtoRawUDP
	} else {
		proto = []core.Protocol{core.ProtoACK, core.ProtoNAK, core.ProtoRing, core.ProtoTree}[r.Intn(4)]
	}
	n := 1 + r.Intn(30)

	ccfg := cluster.Default(n)
	ccfg.Seed = r.Uint64()
	ccfg.Deadline = caseDeadline
	ccfg.WallLimit = 30 * time.Second
	switch {
	case n <= 8 && r.Bool(0.15):
		ccfg.Topology = cluster.SharedBus
	case r.Bool(0.2):
		ccfg.Topology = cluster.SingleSwitch
	}

	// Fabric and protocol-scaling draws come from their own rng stream,
	// so the classic draws above and below stay on the stream positions
	// the pinned sweep seeds were tuned against.
	tr := rng.New(rng.Mix(seed, uint64(index), 0x70B0FA6C))
	if ccfg.Topology != cluster.SharedBus && tr.Bool(0.35) {
		ccfg.Topo = deriveTopo(tr, n+1)
	}

	packetSize := []int{512, 1024, 2048, 4096, 8192, 16384}[r.Intn(6)]
	var msgSize int
	switch r.Intn(4) {
	case 0:
		msgSize = r.Intn(2048) // tiny, including the zero-byte message
	case 1:
		msgSize = 4<<10 + r.Intn(28<<10)
	case 2:
		msgSize = 32<<10 + r.Intn(96<<10)
	default:
		msgSize = 128<<10 + r.Intn(128<<10)
	}

	w := 4 + r.Intn(61)
	if proto == core.ProtoRing && w <= n {
		w = n + 1 + r.Intn(16)
	}
	poll := 1 + r.Intn(min(w, 32))

	pcfg := core.Config{
		Protocol:     proto,
		NumReceivers: n,
		PacketSize:   packetSize,
		WindowSize:   w,
		PollInterval: poll,
		TreeHeight:   1 + r.Intn(n),
	}
	if proto != core.ProtoRawUDP {
		pcfg.SelectiveRepeat = r.Bool(0.25)
		pcfg.NakSuppression = r.Bool(0.2)
		if r.Bool(0.1) {
			pcfg.PaceInterval = time.Duration(20+r.Intn(180)) * time.Microsecond
		}
	}
	// Scaled protocol structure (again on the fabric stream): a
	// partitioned ring — the ring window draw above already guarantees
	// w > n ≥ span — or blocked tree chains.
	if proto == core.ProtoRing && n >= 2 && tr.Bool(0.3) {
		pcfg.NumRings = 2 + tr.Intn(min(3, n-1))
	}
	if proto == core.ProtoTree && tr.Bool(0.3) {
		pcfg.TreeLayout = core.TreeBlocked
	}

	if r.Bool(0.45) {
		ccfg.LossRate = 0.002 + r.Float64()*0.028
	}
	if r.Bool(0.15) {
		// Small socket buffers to provoke overflow drops — but never so
		// small a data packet cannot fit at all, which would deadlock the
		// transfer rather than stress it.
		ccfg.RecvBuf = max(4096<<r.Intn(3), 2*packetSize)
	}

	if r.Bool(0.35) {
		sched := deriveFaults(r, n, ccfg.Topology, proto)
		if len(sched.Events) > 0 {
			ccfg.Faults = sched
			if proto != core.ProtoRawUDP && r.Bool(0.7) {
				pcfg.MaxRetries = 2 + r.Intn(3)
			}
			if proto != core.ProtoRawUDP && r.Bool(0.25) {
				pcfg.SessionDeadline = 2*time.Second + time.Duration(r.Intn(4000))*time.Millisecond
			}
			if sched.HasChurn() && r.Bool(0.5) {
				pcfg.JoinCatchup = core.CatchupPeer
			}
		}
	} else if proto != core.ProtoRawUDP && ccfg.LossRate > 0 && r.Bool(0.08) {
		pcfg.SessionDeadline = 1500*time.Millisecond + time.Duration(r.Intn(2000))*time.Millisecond
	}

	c := Case{Seed: seed, Index: index, Cluster: ccfg, Proto: pcfg, MsgSize: msgSize}

	// Contention draws come from their own stream — like the fabric
	// stream above, so every classic draw keeps its position and the
	// pinned sweep digests over the classic view stay byte-identical.
	// Eligibility is conservative: multi-session runs need a reliable
	// protocol, a nonempty message, static membership (no faults), a
	// switched stock topology (custom fabrics are sized for the classic
	// host count), and no session deadline (which would race the other
	// sessions' contention rather than its own receivers).
	mr := rng.New(rng.Mix(seed, uint64(index), 0x5E551D4B))
	eligible := proto != core.ProtoRawUDP && msgSize > 0 &&
		ccfg.Faults == nil && ccfg.Topo == nil &&
		ccfg.Topology != cluster.SharedBus &&
		pcfg.SessionDeadline == 0 && pcfg.MaxRetries == 0
	if eligible && mr.Bool(0.2) {
		c.Sessions = 2 + mr.Intn(3)
		if n > 10 {
			c.Sessions = 2 // bound the fabric: each session re-uses the full receiver count
		}
		c.Overlap = []float64{0, 0.25, 0.5, 1}[mr.Intn(4)]
		c.Stagger = time.Duration(mr.Intn(5)) * time.Millisecond
		if n >= 2 && mr.Bool(0.5) {
			c.CrossFlows = 1 + mr.Intn(2)
			c.CrossSize = 16<<10 + mr.Intn(48<<10)
			c.CrossRepeat = 1 + mr.Intn(2)
		}
		if mr.Bool(0.5) {
			c.Proto.Rate = core.RateControl{Enabled: true, LeaderPacing: mr.Bool(0.5)}
		}
	}
	return c
}

// deriveTopo draws a small declarative fabric (1-4 switches) with mixed
// link speeds: gigabit or 100 Mbps edges, trunks sometimes slowed by an
// explicit rate or an oversubscription ratio. Capacity-bounded shapes
// size their leaves to fit the drawn host count.
func deriveTopo(r *rng.Rand, hosts int) *topo.Spec {
	var s topo.Spec
	switch r.Intn(4) {
	case 0:
		s = topo.SingleSpec()
	case 1:
		s = topo.Spec{Kind: topo.Star, Leaves: 2}
	case 2:
		s = topo.Spec{Kind: topo.Star, Leaves: 3}
	default:
		s = topo.Spec{Kind: topo.FatTree, Spines: 2, Leaves: 2, HostsPerLeaf: (hosts + 1) / 2}
	}
	if r.Bool(0.4) {
		s.EdgeRate = ethernet.Rate1Gbps
	}
	if s.Kind != topo.Single {
		switch r.Intn(3) {
		case 1:
			s.Oversub = 2 + r.Intn(3)
		case 2:
			if s.EdgeRate == ethernet.Rate1Gbps {
				s.TrunkRate = ethernet.Rate100Mbps
			} else {
				s.TrunkRate = ethernet.Rate10Mbps
			}
		}
	}
	return &s
}

// deriveFaults builds a small schedule honoring the runner's
// constraints: no bursts on the shared bus (the injector rejects them —
// a bus has no switch ports to gate) and only time triggers for raw UDP
// (which has no acknowledged progress to trigger on).
func deriveFaults(r *rng.Rand, n int, topo cluster.Topology, proto core.Protocol) *faults.Schedule {
	sched := &faults.Schedule{}
	for i, count := 0, 1+r.Intn(3); i < count; i++ {
		var e faults.Event
		switch pick := r.Intn(20); {
		case pick < 7:
			e.Kind = faults.Crash
		case pick < 13:
			e.Kind = faults.Stall
			e.Dur = time.Duration(10+r.Intn(1500)) * time.Millisecond
		case pick < 17 || topo == cluster.SharedBus:
			e.Kind = faults.Flap
			e.Dur = time.Duration(10+r.Intn(1500)) * time.Millisecond
		default:
			e.Kind = faults.Burst
			e.Dur = time.Duration(5+r.Intn(150)) * time.Millisecond
			e.Rate = 0.2 + 0.6*r.Float64()
		}
		e.Node = 1 + r.Intn(n)
		if proto != core.ProtoRawUDP && r.Bool(0.7) {
			e.ByProgress = true
			e.Progress = float64(r.Intn(10)) / 10
		} else {
			e.At = time.Duration(r.Intn(200)) * time.Millisecond
		}
		sched.Events = append(sched.Events, e)
	}
	// Membership churn rides alongside the classic faults on the
	// reliable protocols: a late join, a graceful leave, or both.
	// Overlap with the classic faults is deliberate — a joiner whose
	// link flaps mid-catch-up, or a leaver racing a crash, is exactly
	// the compound scenario the membership checker must stay sound
	// under. (Validate forbids only double transitions per rank, which
	// the distinct-rank draw below avoids.)
	if proto != core.ProtoRawUDP && n >= 3 && r.Bool(0.5) {
		joiner := 0
		if r.Bool(0.7) {
			joiner = 1 + r.Intn(n)
			sched.Events = append(sched.Events, churnEvent(r, faults.Join, joiner))
		}
		if leaver := 1 + r.Intn(n); leaver != joiner && (joiner == 0 || r.Bool(0.5)) {
			sched.Events = append(sched.Events, churnEvent(r, faults.Leave, leaver))
		}
	}
	return sched
}

// churnEvent draws one membership transition's trigger: usually a
// progress fraction (which survives timing retunes), sometimes an
// absolute virtual time like the classic faults.
func churnEvent(r *rng.Rand, kind faults.Kind, node int) faults.Event {
	e := faults.Event{Kind: kind, Node: node}
	if r.Bool(0.8) {
		e.ByProgress = true
		e.Progress = float64(r.Intn(10)) / 10
	} else {
		e.At = time.Duration(r.Intn(200)) * time.Millisecond
	}
	return e
}

// RunCase executes one derived case under full invariant checking:
// single-session cases through Execute, contention cases through the
// session planner and ExecuteMulti.
func RunCase(ctx context.Context, c Case) (*Outcome, error) {
	if c.Sessions > 1 {
		return runMultiCase(ctx, c)
	}
	return Execute(ctx, c.Cluster, c.Proto, c.MsgSize)
}

// runMultiCase plans and executes a contention case and folds the
// per-session outcomes into one report, each violation prefixed with
// its session index.
func runMultiCase(ctx context.Context, c Case) (*Outcome, error) {
	ccfg, specs, flows, err := session.Plan(session.Config{
		Sessions:     c.Sessions,
		ReceiversPer: c.Cluster.NumReceivers,
		Overlap:      c.Overlap,
		Stagger:      c.Stagger,
		Proto:        c.Proto,
		MsgSize:      c.MsgSize,
		Cluster:      c.Cluster,
		CrossFlows:   c.CrossFlows,
		CrossSize:    c.CrossSize,
		CrossRepeat:  c.CrossRepeat,
	})
	if err != nil {
		return nil, err
	}
	outs, _, err := ExecuteMulti(ctx, ccfg, specs, flows)
	if err != nil {
		return nil, err
	}
	agg := &Outcome{Info: outs[0].Info, Tail: outs[0].Tail}
	for si, o := range outs {
		for _, v := range o.Violations {
			v.Detail = fmt.Sprintf("session %d: %s", si, v.Detail)
			agg.Violations = append(agg.Violations, v)
		}
		if len(o.Violations) > 0 {
			agg.Info, agg.Tail = o.Info, o.Tail
		}
	}
	return agg, nil
}

// CaseResult is one finished case of a Fuzz sweep. Err is a harness
// failure (invalid derived config, cancellation) — protocol-level
// failures (deadlines, partial delivery) land in Outcome.Info.RunErr
// and are judged by the checkers instead.
type CaseResult struct {
	Case    Case
	Outcome *Outcome
	Err     error
}

// Fuzz derives and runs cases first..first+n-1 from seed, fanning them
// over parallel workers (the experiment engine's pool), and reports
// each finished case in index order — so output is deterministic
// regardless of worker count. report returning false stops the sweep:
// cases not yet started are cancelled.
func Fuzz(ctx context.Context, seed uint64, first, n, parallel int, report func(CaseResult) bool) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	pool := exp.NewPool(ctx, parallel)
	cases := make([]Case, n)
	jobs := make([]*exp.Job[*Outcome], n)
	for i := 0; i < n; i++ {
		c := DeriveCase(seed, first+i)
		cases[i] = c
		jobs[i] = exp.Fork(pool, func() (*Outcome, error) { return RunCase(ctx, c) })
	}
	for i := 0; i < n; i++ {
		out, err := jobs[i].Wait()
		if !report(CaseResult{Case: cases[i], Outcome: out, Err: err}) {
			return
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
