package check

import (
	"rmcast/internal/packet"
	"rmcast/internal/trace"
)

// metricsChecker recounts the session's traffic independently from the
// trace stream and demands the metrics session agree:
//
//   - per-type sent/received packet counts match exactly (the trace and
//     the metrics session hook the same transmission and reception
//     points, and the runner flushes the trace sink on close — any
//     drift means an event was recorded on one side only);
//   - retransmissions equal the sender's data multicasts minus the
//     distinct sequences (first transmissions are unique for every
//     protocol, including the raw blast);
//   - the NAK counter matches the NAK sends in the trace (when
//     receivers were ejected the metric may exceed the trace: an
//     ejected receiver counts the NAK it then suppresses);
//   - ejections equal len(Result.Failed), and buffer-overflow drops
//     equal the hosts' socket-drop total.
type metricsChecker struct {
	violations
	count uint32

	sent     map[packet.Type]uint64
	received map[packet.Type]uint64
	naks     uint64
	dataTx   uint64 // sender data transmissions (any dir)
	seen     []bool // distinct data sequences the sender transmitted
	distinct uint64
}

func newMetricsChecker() *metricsChecker {
	return &metricsChecker{violations: violations{name: "metrics"}}
}

func (c *metricsChecker) Begin(info *RunInfo) {
	c.count = info.Count
	c.sent = make(map[packet.Type]uint64)
	c.received = make(map[packet.Type]uint64)
	c.seen = make([]bool, info.Count)
}

func (c *metricsChecker) Observe(e trace.Event) {
	switch e.Dir {
	case trace.Send, trace.SendMC:
		c.sent[e.Type]++
		if e.Type == packet.TypeNak && e.Node != 0 {
			c.naks++
		}
		if e.Type == packet.TypeData && e.Node == 0 {
			c.dataTx++
			if e.Seq < c.count && !c.seen[e.Seq] {
				c.seen[e.Seq] = true
				c.distinct++
			}
		}
	case trace.Recv:
		c.received[e.Type]++
	}
}

func (c *metricsChecker) Finish(info *RunInfo) []Violation {
	res := info.Result
	if res == nil {
		return c.take()
	}
	m := res.Metrics
	for t := packet.TypeAllocReq; t <= packet.TypeLeft; t++ {
		name := t.String()
		if got, want := m.Sent[name], c.sent[t]; got != want {
			c.addf("metrics counted %d %s packets sent, trace shows %d", got, name, want)
		}
		if got, want := m.Received[name], c.received[t]; got != want {
			c.addf("metrics counted %d %s packets received, trace shows %d", got, name, want)
		}
	}
	if want := c.dataTx - c.distinct; m.Retransmissions != want {
		c.addf("metrics counted %d retransmissions, trace shows %d (%d data transmissions, %d distinct)",
			m.Retransmissions, want, c.dataTx, c.distinct)
	}
	if len(res.Failed) == 0 && len(res.Left) == 0 {
		if m.NaksSent != c.naks {
			c.addf("metrics counted %d NAKs, trace shows %d", m.NaksSent, c.naks)
		}
	} else if c.naks > m.NaksSent {
		// An ejected or departed receiver counts the NAK its silenced
		// send path then suppresses, so the metric may exceed the trace.
		c.addf("trace shows %d NAKs but metrics counted only %d", c.naks, m.NaksSent)
	}
	if m.Ejections != uint64(len(res.Failed)) {
		c.addf("metrics counted %d ejections but Result.Failed lists %d receivers",
			m.Ejections, len(res.Failed))
	}
	var drops uint64
	for _, h := range res.HostStats {
		drops += h.SocketDrops
	}
	if m.BufferOverflowDrops != drops {
		c.addf("metrics counted %d buffer-overflow drops, host stats total %d",
			m.BufferOverflowDrops, drops)
	}
	return c.take()
}
