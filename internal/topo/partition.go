package topo

import "fmt"

// Partition maps a Layout's switches (and therefore its hosts) onto
// simulation shards for the sharded event loop.
//
// The assignment rule is chosen for determinism, not just balance.
// Sharded runs must reproduce the serial event order byte-for-byte,
// and the merge that interleaves per-shard logs breaks same-instant
// ties by shard index. In a serial run, same-instant ties execute in
// event-creation order, which for the common case — a multicast
// fan-out cascading through the flood spanning tree — is the fabric's
// construction order: ascending switch index, hence ascending host
// rank. Keeping the shard index monotone in the host-bearing switch
// index makes the merge's tie-break agree with that order.
//
// Concretely: shard 0 holds only the sender's leaf switch (the sender
// is host 0, and the primary shard should carry as little foreign load
// as possible, since it executes serially before the workers in every
// window); the remaining host-bearing switches are split, in ascending
// index order, into contiguous blocks over shards 1..n-1. Switches
// without hosts (spines, a star core) emit no trace or delivery
// entries, so their placement cannot affect the merged stream; they
// are dealt round-robin over shards 1..n-1 purely for load.
type Partition struct {
	// Shards is the shard count.
	Shards int
	// SwitchShard maps switch index -> shard.
	SwitchShard []int
	// HostShard maps host index -> shard (the shard of its switch).
	HostShard []int
}

// MaxShards returns the maximum usable shard count for the layout: the
// number of host-bearing switches. (Shard 0 holds exactly one of them;
// every other shard needs at least one to be worth scheduling.)
func (l *Layout) MaxShards() int { return len(l.hostBearing()) }

// hostBearing returns the ascending switch indices that hold at least
// one host.
func (l *Layout) hostBearing() []int {
	counts := make([]int, len(l.Switches))
	for _, s := range l.HostSwitch {
		counts[s]++
	}
	var hb []int
	for s, c := range counts {
		if c > 0 {
			hb = append(hb, s)
		}
	}
	return hb
}

// Partition assigns the layout's switches to shards shards. shards
// must be at least 2 (a single shard is just the serial path) and at
// most MaxShards.
func (l *Layout) Partition(shards int) (*Partition, error) {
	if shards < 2 {
		return nil, fmt.Errorf("topo: partition needs at least 2 shards, got %d", shards)
	}
	hb := l.hostBearing()
	if shards > len(hb) {
		return nil, fmt.Errorf("topo: %d shards exceed the %d host-bearing switch domains of %s",
			shards, len(hb), l.Spec.String())
	}
	p := &Partition{
		Shards:      shards,
		SwitchShard: make([]int, len(l.Switches)),
		HostShard:   make([]int, len(l.HostSwitch)),
	}
	for i := range p.SwitchShard {
		p.SwitchShard[i] = -1
	}
	// Shard 0: the sender's switch alone.
	p.SwitchShard[l.HostSwitch[0]] = 0
	// Remaining host-bearing switches: contiguous ascending blocks over
	// shards 1..n-1, larger blocks first when uneven.
	var rest []int
	for _, s := range hb {
		if s != l.HostSwitch[0] {
			rest = append(rest, s)
		}
	}
	blocks := shards - 1
	base, extra := len(rest)/blocks, len(rest)%blocks
	idx := 0
	for b := 0; b < blocks; b++ {
		n := base
		if b < extra {
			n++
		}
		for i := 0; i < n; i++ {
			p.SwitchShard[rest[idx]] = 1 + b
			idx++
		}
	}
	// Hostless switches: round-robin over shards 1..n-1.
	rr := 0
	for s := range p.SwitchShard {
		if p.SwitchShard[s] < 0 {
			p.SwitchShard[s] = 1 + rr%blocks
			rr++
		}
	}
	for h, s := range l.HostSwitch {
		p.HostShard[h] = p.SwitchShard[s]
	}
	return p, nil
}
