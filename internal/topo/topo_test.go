package topo

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"rmcast/internal/ethernet"
)

func TestParseCanonicalStrings(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Spec
	}{
		{"single", Spec{Kind: Single}},
		{"two-switch", Spec{Kind: TwoSwitch}},
		{"two-switch@1g", Spec{Kind: TwoSwitch, EdgeRate: ethernet.Rate1Gbps}},
		{"star:4", Spec{Kind: Star, Leaves: 4}},
		{"star:4x16@100m", Spec{Kind: Star, Leaves: 4, HostsPerLeaf: 16, EdgeRate: ethernet.Rate100Mbps}},
		{"star:3,over=4", Spec{Kind: Star, Leaves: 3, Oversub: 4}},
		{"fattree:4x8x32@1g,trunk=100m", Spec{
			Kind: FatTree, Spines: 4, Leaves: 8, HostsPerLeaf: 32,
			EdgeRate: ethernet.Rate1Gbps, TrunkRate: ethernet.Rate100Mbps,
		}},
		{"two-switch,trunk=10m", Spec{Kind: TwoSwitch, TrunkRate: ethernet.Rate10Mbps}},
	} {
		got, err := Parse(tc.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("Parse(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
}

func TestParseRejectsInvalid(t *testing.T) {
	for _, in := range []string{
		"",
		"ring",                 // unknown kind
		"single:4",             // single takes no dims
		"two-switch:2",         // two-switch takes no dims
		"star",                 // star requires dims
		"star:0",               // zero leaves
		"star:4x16x2",          // too many dims
		"fattree:4x8",          // fat-tree needs three dims
		"fattree:0x8x32",       // zero spines
		"star:4@100",           // rate without unit
		"star:4@m",             // rate without digits
		"star:4,speed=1g",      // unknown option
		"star:4,trunk",         // option without value
		"star:4,over=0",        // oversub must be >= 1
		"star:4,over=-2",       // negative oversub
		"single,trunk=1g",      // single has no trunks
		"single,over=2",        // single has no trunks
		"star:4,trunk=1g,over=2", // mutually exclusive
	} {
		if spec, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) accepted invalid spec: %+v", in, spec)
		}
	}
}

func TestRateRoundTrip(t *testing.T) {
	for _, s := range []string{"10m", "100m", "1g", "25g", "2500m"} {
		r, err := ParseRate(s)
		if err != nil {
			t.Fatalf("ParseRate(%q): %v", s, err)
		}
		if got := FormatRate(r); got != s && !(s == "2500m" && got == "2500m") {
			// 2500m stays 2500m (not a whole gigabit).
			t.Errorf("FormatRate(ParseRate(%q)) = %q", s, got)
		}
	}
	if got := FormatRate(2_500_000_000); got != "2500m" {
		t.Errorf("FormatRate(2.5G) = %q, want 2500m", got)
	}
}

// randomSpec draws a structurally valid spec from rng.
func randomSpec(rng *rand.Rand) Spec {
	rates := []ethernet.Rate{0, ethernet.Rate10Mbps, ethernet.Rate100Mbps, ethernet.Rate1Gbps}
	var s Spec
	switch rng.Intn(4) {
	case 0:
		s.Kind = Single
	case 1:
		s.Kind = TwoSwitch
	case 2:
		s.Kind = Star
		s.Leaves = 1 + rng.Intn(8)
		s.HostsPerLeaf = rng.Intn(33) // 0 = balanced
	case 3:
		s.Kind = FatTree
		s.Spines = 1 + rng.Intn(4)
		s.Leaves = 1 + rng.Intn(8)
		s.HostsPerLeaf = 1 + rng.Intn(32)
	}
	s.EdgeRate = rates[rng.Intn(len(rates))]
	if s.Kind != Single {
		switch rng.Intn(3) {
		case 1:
			s.TrunkRate = rates[1+rng.Intn(len(rates)-1)]
		case 2:
			s.Oversub = 1 + rng.Intn(10)
		}
	}
	return s
}

func TestStringParseRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		spec := randomSpec(rng)
		if err := spec.Check(); err != nil {
			t.Fatalf("randomSpec produced invalid %+v: %v", spec, err)
		}
		str := spec.String()
		back, err := Parse(str)
		if err != nil {
			t.Fatalf("Parse(String(%+v) = %q): %v", spec, str, err)
		}
		if back != spec {
			t.Fatalf("round trip %q: got %+v, want %+v", str, back, spec)
		}
		if again := back.String(); again != str {
			t.Fatalf("String not canonical: %q vs %q", again, str)
		}
	}
}

func TestCapacityAndValidate(t *testing.T) {
	ft := Spec{Kind: FatTree, Spines: 2, Leaves: 4, HostsPerLeaf: 16}
	if got := ft.Capacity(); got != 64 {
		t.Errorf("fattree 4x16 capacity = %d, want 64", got)
	}
	if err := ft.Validate(64); err != nil {
		t.Errorf("Validate(64) on a 64-host fabric: %v", err)
	}
	if err := ft.Validate(65); err == nil {
		t.Error("Validate(65) on a 64-host fabric should fail")
	}
	if err := ft.Validate(0); err == nil {
		t.Error("Validate(0) should fail")
	}
	// Unbounded shapes.
	for _, s := range []Spec{SingleSpec(), TwoSwitchSpec(), {Kind: Star, Leaves: 3}} {
		if got := s.Capacity(); got != 0 {
			t.Errorf("%v capacity = %d, want 0 (unbounded)", s, got)
		}
		if err := s.Validate(1000); err != nil {
			t.Errorf("%v Validate(1000): %v", s, err)
		}
	}
}

func TestDomains(t *testing.T) {
	for _, tc := range []struct {
		spec  Spec
		hosts int
		want  []int
	}{
		{SingleSpec(), 31, []int{31}},
		{TwoSwitchSpec(), 31, []int{16, 15}},
		{TwoSwitchSpec(), 16, []int{16}},
		{TwoSwitchSpec(), 5, []int{5}},
		{Spec{Kind: Star, Leaves: 4}, 10, []int{3, 3, 2, 2}},
		{Spec{Kind: Star, Leaves: 4, HostsPerLeaf: 4}, 10, []int{4, 4, 2}},
		{Spec{Kind: FatTree, Spines: 2, Leaves: 4, HostsPerLeaf: 16}, 33, []int{16, 16, 1}},
	} {
		got := tc.spec.Domains(tc.hosts)
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%v Domains(%d) = %v, want %v", tc.spec, tc.hosts, got, tc.want)
		}
		sum, max := 0, 0
		for _, d := range got {
			sum += d
			if d > max {
				max = d
			}
		}
		if sum != tc.hosts {
			t.Errorf("%v Domains(%d) sums to %d", tc.spec, tc.hosts, sum)
		}
		if m := tc.spec.MaxDomain(tc.hosts); m != max {
			t.Errorf("%v MaxDomain(%d) = %d, want %d", tc.spec, tc.hosts, m, max)
		}
	}
}

// checkLayout verifies the structural invariants every layout must hold:
// all hosts placed on host-bearing switches, flood trunks forming a
// spanning tree, and a route from every switch to every host.
func checkLayout(t *testing.T, l *Layout) {
	t.Helper()
	for h, sw := range l.HostSwitch {
		if sw < 0 || sw >= len(l.Switches) {
			t.Fatalf("host %d on out-of-range switch %d", h, sw)
		}
	}
	// Flood trunks must form a spanning tree: switches-1 edges, all
	// switches reachable.
	flood := 0
	reached := map[int]bool{0: true}
	for changed := true; changed; {
		changed = false
		for _, tr := range l.Trunks {
			if !tr.Flood {
				continue
			}
			if reached[tr.A] != reached[tr.B] {
				reached[tr.A], reached[tr.B] = true, true
				changed = true
			}
		}
	}
	for _, tr := range l.Trunks {
		if tr.Flood {
			flood++
		}
	}
	if flood != len(l.Switches)-1 {
		t.Fatalf("flood trunks = %d, want %d (spanning tree over %d switches)",
			flood, len(l.Switches)-1, len(l.Switches))
	}
	for s := range l.Switches {
		if !reached[s] {
			t.Fatalf("switch %d unreachable over flood trunks", s)
		}
	}
	// Every (switch, host) pair must have a route: local (-1) exactly
	// when the host attaches to the switch, a valid trunk otherwise.
	for s := range l.Switches {
		for h := 0; h < l.Hosts; h++ {
			r := l.Route(s, h)
			if l.HostSwitch[h] == s {
				if r != -1 {
					t.Fatalf("Route(%d, local host %d) = %d, want -1", s, h, r)
				}
				continue
			}
			if r < 0 || r >= len(l.Trunks) {
				t.Fatalf("Route(%d, %d) = %d: no valid trunk", s, h, r)
			}
			tr := l.Trunks[r]
			if tr.A != s && tr.B != s {
				t.Fatalf("Route(%d, %d) = trunk %d which is not incident (%d-%d)", s, h, r, tr.A, tr.B)
			}
		}
	}
}

func TestLayoutShapes(t *testing.T) {
	for _, tc := range []struct {
		spec         Spec
		hosts        int
		wantSwitches int
		wantTrunks   int
	}{
		{SingleSpec(), 8, 1, 0},
		{TwoSwitchSpec(), 8, 1, 0},
		{TwoSwitchSpec(), 31, 2, 1},
		{Spec{Kind: Star, Leaves: 4, HostsPerLeaf: 16}, 31, 5, 4},
		{Spec{Kind: FatTree, Spines: 2, Leaves: 4, HostsPerLeaf: 16}, 33, 6, 8},
		{Spec{Kind: FatTree, Spines: 4, Leaves: 32, HostsPerLeaf: 33}, 1026, 36, 128},
	} {
		t.Run(tc.spec.String(), func(t *testing.T) {
			l, err := tc.spec.Layout(tc.hosts, 0)
			if err != nil {
				t.Fatal(err)
			}
			if len(l.Switches) != tc.wantSwitches {
				t.Errorf("switches = %d, want %d", len(l.Switches), tc.wantSwitches)
			}
			if len(l.Trunks) != tc.wantTrunks {
				t.Errorf("trunks = %d, want %d", len(l.Trunks), tc.wantTrunks)
			}
			checkLayout(t, l)
		})
	}
}

func TestLayoutDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		spec := randomSpec(rng)
		hosts := 1 + rng.Intn(40)
		if cap := spec.Capacity(); cap > 0 && hosts > cap {
			hosts = cap
		}
		a, errA := spec.Layout(hosts, ethernet.Rate100Mbps)
		b, errB := spec.Layout(hosts, ethernet.Rate100Mbps)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("%v/%d: error mismatch %v vs %v", spec, hosts, errA, errB)
		}
		if errA != nil {
			continue
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%v/%d: layouts differ across identical expansions", spec, hosts)
		}
		checkLayout(t, a)
	}
}

func TestLayoutRates(t *testing.T) {
	// Explicit trunk rate.
	spec := Spec{Kind: Star, Leaves: 2, EdgeRate: ethernet.Rate1Gbps, TrunkRate: ethernet.Rate100Mbps}
	l, err := spec.Layout(8, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, sw := range l.Switches {
		if sw.Rate != ethernet.Rate1Gbps {
			t.Errorf("switch %s rate = %v, want 1g", sw.Name, sw.Rate)
		}
	}
	for _, tr := range l.Trunks {
		if tr.Rate != ethernet.Rate100Mbps {
			t.Errorf("trunk rate = %v, want 100m", tr.Rate)
		}
	}
	// Oversubscription ratio derives the trunk rate.
	spec = Spec{Kind: Star, Leaves: 2, EdgeRate: ethernet.Rate1Gbps, Oversub: 10}
	if l, err = spec.Layout(8, 0); err != nil {
		t.Fatal(err)
	}
	for _, tr := range l.Trunks {
		if tr.Rate != ethernet.Rate100Mbps {
			t.Errorf("oversub 10 trunk rate = %v, want 100m", tr.Rate)
		}
	}
	// Default rate substitutes for an unset edge rate.
	spec = Spec{Kind: Star, Leaves: 2}
	if l, err = spec.Layout(8, ethernet.Rate10Mbps); err != nil {
		t.Fatal(err)
	}
	if l.Switches[0].Rate != ethernet.Rate10Mbps {
		t.Errorf("default rate not applied: %v", l.Switches[0].Rate)
	}
}

func TestCannedSpecsAreValid(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range Canned() {
		s := c.Spec.String()
		if seen[s] {
			t.Errorf("duplicate canned spec %q", s)
		}
		seen[s] = true
		back, err := Parse(s)
		if err != nil {
			t.Errorf("canned spec %q does not parse: %v", s, err)
			continue
		}
		if back != c.Spec {
			t.Errorf("canned spec %q round-trips to %+v", s, back)
		}
	}
	if !seen["single"] || !seen["two-switch"] {
		t.Error("canned list must include the legacy enum equivalents")
	}
}

func TestFatTreeSpreadsEqualCostPaths(t *testing.T) {
	// With 4 spines, unicast routes from one leaf to remote hosts must
	// use more than one spine trunk (acknowledgment load-balancing).
	spec := Spec{Kind: FatTree, Spines: 4, Leaves: 4, HostsPerLeaf: 8}
	l, err := spec.Layout(32, 0)
	if err != nil {
		t.Fatal(err)
	}
	used := map[int]bool{}
	for h := 0; h < 32; h++ {
		if l.HostSwitch[h] == 0 {
			continue
		}
		used[l.Route(0, h)] = true
	}
	if len(used) < 2 {
		t.Errorf("leaf 0 routes all remote traffic over %d trunk(s), want spread across spines", len(used))
	}
}

func ExampleParse() {
	spec, _ := Parse("fattree:2x4x16@100m,trunk=1g")
	fmt.Println(spec)
	fmt.Println(spec.Capacity(), "hosts max")
	// Output:
	// fattree:2x4x16@100m,trunk=1g
	// 64 hosts max
}
