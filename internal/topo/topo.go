// Package topo describes switched Ethernet fabrics declaratively. A
// Spec is a compact, parseable description of a switch topology —
// single switch, the paper's two-switch testbed, a star-of-stars, or a
// two-level fat-tree — together with per-link speeds and trunk
// oversubscription. Layout expands a Spec for a concrete host count
// into an ordered wiring plan (switches, host placement, trunks,
// forwarding routes, and a flood spanning tree) that the cluster
// builder walks over the internal/ethernet primitives.
//
// The string grammar (Parse/String round-trip):
//
//	spec    = kind [ "@" rate ] { "," option }
//	kind    = "single" | "two-switch"
//	        | "star:" leaves [ "x" hostsPerLeaf ]
//	        | "fattree:" spines "x" leaves "x" hostsPerLeaf
//	option  = "trunk=" rate | "over=" int
//	rate    = int ( "m" | "g" )
//
// Examples: "single", "two-switch", "star:4x16@100m,trunk=1g",
// "fattree:4x8x32@1g,trunk=100m", "star:3,over=4".
package topo

import (
	"fmt"
	"strconv"
	"strings"

	"rmcast/internal/ethernet"
)

// Kind selects the fabric shape.
type Kind int

const (
	// Single is one switch holding every host.
	Single Kind = iota
	// TwoSwitch is the paper's Figure 7 testbed: hosts 0..15 on switch
	// A, the rest on switch B, one trunk between them. With 16 hosts or
	// fewer, switch B is never built (matching the legacy builder).
	TwoSwitch
	// Star is a star-of-stars: leaf switches holding the hosts, each
	// trunked to one core switch (the Grid cluster-of-clusters shape).
	Star
	// FatTree is a two-level fat-tree: every leaf switch trunks to
	// every spine switch, giving Spines equal-cost paths between leaves.
	FatTree
)

func (k Kind) String() string {
	switch k {
	case Single:
		return "single"
	case TwoSwitch:
		return "two-switch"
	case Star:
		return "star"
	case FatTree:
		return "fattree"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Spec is a declarative fabric description. The zero value is a single
// switch at the runner's default link rate.
type Spec struct {
	// Kind is the fabric shape.
	Kind Kind
	// Spines is the number of spine switches (FatTree only).
	Spines int
	// Leaves is the number of host-bearing leaf switches (Star and
	// FatTree).
	Leaves int
	// HostsPerLeaf is each leaf's host capacity. Required for FatTree;
	// for Star, zero spreads hosts evenly across the leaves.
	HostsPerLeaf int
	// EdgeRate is the host-facing port speed; zero uses the runner's
	// default link rate.
	EdgeRate ethernet.Rate
	// TrunkRate is the inter-switch trunk speed; zero derives it from
	// EdgeRate and Oversub. Mutually exclusive with Oversub.
	TrunkRate ethernet.Rate
	// Oversub is the trunk oversubscription ratio: trunks run at
	// edge-rate / Oversub. Zero means trunks match the edge rate.
	Oversub int
}

// SingleSpec returns the canned spec equivalent to the legacy
// SingleSwitch topology enum.
func SingleSpec() Spec { return Spec{Kind: Single} }

// TwoSwitchSpec returns the canned spec equivalent to the legacy
// TwoSwitch topology enum (the paper's Figure 7 testbed).
func TwoSwitchSpec() Spec { return Spec{Kind: TwoSwitch} }

// Canned lists the built-in specs with a short description each, for
// CLI helpers like `-topo list`.
func Canned() []struct {
	Spec Spec
	Note string
} {
	return []struct {
		Spec Spec
		Note string
	}{
		{SingleSpec(), "one switch, every host (legacy single-switch)"},
		{TwoSwitchSpec(), "the paper's Figure 7 testbed: split at host 16, one trunk (legacy two-switch)"},
		{Spec{Kind: Star, Leaves: 4, HostsPerLeaf: 16, EdgeRate: ethernet.Rate100Mbps}, "star-of-stars: 4 leaves x 16 hosts around one core"},
		{Spec{Kind: FatTree, Spines: 2, Leaves: 4, HostsPerLeaf: 16, EdgeRate: ethernet.Rate100Mbps}, "fat-tree: 4 leaves x 16 hosts, 2 spines"},
		{Spec{Kind: FatTree, Spines: 4, Leaves: 32, HostsPerLeaf: 33, EdgeRate: ethernet.Rate1Gbps}, "1k-receiver scale fabric (fits 1056 hosts)"},
	}
}

// ParseRate parses a link rate: an integer followed by "m" (Mbps) or
// "g" (Gbps), e.g. "10m", "100m", "1g".
func ParseRate(s string) (ethernet.Rate, error) {
	if len(s) < 2 {
		return 0, fmt.Errorf("topo: bad rate %q (want e.g. 100m or 1g)", s)
	}
	unit := ethernet.Rate(0)
	switch s[len(s)-1] {
	case 'm':
		unit = 1_000_000
	case 'g':
		unit = 1_000_000_000
	default:
		return 0, fmt.Errorf("topo: bad rate suffix in %q (want m or g)", s)
	}
	n, err := strconv.Atoi(s[:len(s)-1])
	if err != nil || n < 1 {
		return 0, fmt.Errorf("topo: bad rate %q (want e.g. 100m or 1g)", s)
	}
	return ethernet.Rate(n) * unit, nil
}

// FormatRate renders a rate in the grammar's form ("100m", "1g").
// Rates that are not whole megabits fall back to the raw bit count,
// which ParseRate does not accept — such rates cannot appear in specs.
func FormatRate(r ethernet.Rate) string {
	switch {
	case r >= 1_000_000_000 && r%1_000_000_000 == 0:
		return fmt.Sprintf("%dg", r/1_000_000_000)
	case r >= 1_000_000 && r%1_000_000 == 0:
		return fmt.Sprintf("%dm", r/1_000_000)
	default:
		return fmt.Sprintf("%dbps", int64(r))
	}
}

// Parse converts a spec string (see the package grammar) into a Spec.
func Parse(s string) (Spec, error) {
	var spec Spec
	parts := strings.Split(s, ",")
	head := parts[0]
	if at := strings.IndexByte(head, '@'); at >= 0 {
		rate, err := ParseRate(head[at+1:])
		if err != nil {
			return Spec{}, err
		}
		spec.EdgeRate = rate
		head = head[:at]
	}
	kind, dims, hasDims := strings.Cut(head, ":")
	switch kind {
	case "single":
		spec.Kind = Single
	case "two-switch":
		spec.Kind = TwoSwitch
	case "star":
		spec.Kind = Star
	case "fattree":
		spec.Kind = FatTree
	default:
		return Spec{}, fmt.Errorf("topo: unknown fabric kind %q in %q", kind, s)
	}
	switch spec.Kind {
	case Single, TwoSwitch:
		if hasDims {
			return Spec{}, fmt.Errorf("topo: %s takes no dimensions (got %q)", kind, s)
		}
	case Star:
		d, err := parseDims(kind, dims, 1, 2)
		if err != nil {
			return Spec{}, err
		}
		spec.Leaves = d[0]
		if len(d) == 2 {
			spec.HostsPerLeaf = d[1]
		}
	case FatTree:
		d, err := parseDims(kind, dims, 3, 3)
		if err != nil {
			return Spec{}, err
		}
		spec.Spines, spec.Leaves, spec.HostsPerLeaf = d[0], d[1], d[2]
	}
	for _, opt := range parts[1:] {
		key, val, ok := strings.Cut(opt, "=")
		if !ok {
			return Spec{}, fmt.Errorf("topo: bad option %q in %q (want key=value)", opt, s)
		}
		switch key {
		case "trunk":
			rate, err := ParseRate(val)
			if err != nil {
				return Spec{}, err
			}
			spec.TrunkRate = rate
		case "over":
			k, err := strconv.Atoi(val)
			if err != nil || k < 1 {
				return Spec{}, fmt.Errorf("topo: bad oversubscription %q in %q (want a positive integer)", val, s)
			}
			spec.Oversub = k
		default:
			return Spec{}, fmt.Errorf("topo: unknown option %q in %q (valid: trunk, over)", key, s)
		}
	}
	if err := spec.Check(); err != nil {
		return Spec{}, err
	}
	return spec, nil
}

// parseDims splits an "AxBxC" dimension list, requiring between min
// and max positive components.
func parseDims(kind, dims string, min, max int) ([]int, error) {
	if dims == "" {
		return nil, fmt.Errorf("topo: %s requires dimensions (e.g. %s:4x8)", kind, kind)
	}
	fields := strings.Split(dims, "x")
	if len(fields) < min || len(fields) > max {
		return nil, fmt.Errorf("topo: %s takes %d-%d dimensions, got %q", kind, min, max, dims)
	}
	out := make([]int, len(fields))
	for i, f := range fields {
		n, err := strconv.Atoi(f)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("topo: bad dimension %q in %q", f, dims)
		}
		out[i] = n
	}
	return out, nil
}

// String renders the spec in the canonical grammar form; Parse inverts
// it for every spec that passes Check.
func (s Spec) String() string {
	var b strings.Builder
	b.WriteString(s.Kind.String())
	switch s.Kind {
	case Star:
		fmt.Fprintf(&b, ":%d", s.Leaves)
		if s.HostsPerLeaf > 0 {
			fmt.Fprintf(&b, "x%d", s.HostsPerLeaf)
		}
	case FatTree:
		fmt.Fprintf(&b, ":%dx%dx%d", s.Spines, s.Leaves, s.HostsPerLeaf)
	}
	if s.EdgeRate != 0 {
		b.WriteByte('@')
		b.WriteString(FormatRate(s.EdgeRate))
	}
	if s.TrunkRate != 0 {
		b.WriteString(",trunk=")
		b.WriteString(FormatRate(s.TrunkRate))
	}
	if s.Oversub != 0 {
		fmt.Fprintf(&b, ",over=%d", s.Oversub)
	}
	return b.String()
}

// Check validates the spec's shape independent of any host count.
func (s Spec) Check() error {
	switch s.Kind {
	case Single, TwoSwitch:
		if s.Spines != 0 || s.Leaves != 0 || s.HostsPerLeaf != 0 {
			return fmt.Errorf("topo: %v takes no dimensions", s.Kind)
		}
		if s.Kind == Single && (s.TrunkRate != 0 || s.Oversub != 0) {
			return fmt.Errorf("topo: single has no trunks; trunk/over do not apply")
		}
	case Star:
		if s.Spines != 0 {
			return fmt.Errorf("topo: star has no spines")
		}
		if s.Leaves < 1 {
			return fmt.Errorf("topo: star requires at least 1 leaf")
		}
		if s.HostsPerLeaf < 0 {
			return fmt.Errorf("topo: negative HostsPerLeaf")
		}
	case FatTree:
		if s.Spines < 1 || s.Leaves < 1 || s.HostsPerLeaf < 1 {
			return fmt.Errorf("topo: fattree requires spines, leaves, and hosts-per-leaf >= 1")
		}
	default:
		return fmt.Errorf("topo: unknown kind %d", int(s.Kind))
	}
	if s.Oversub < 0 {
		return fmt.Errorf("topo: negative oversubscription ratio")
	}
	if s.TrunkRate != 0 && s.Oversub != 0 {
		return fmt.Errorf("topo: trunk rate and oversubscription ratio are mutually exclusive")
	}
	if s.EdgeRate < 0 || s.TrunkRate < 0 {
		return fmt.Errorf("topo: negative link rate")
	}
	return nil
}

// Validate checks the spec against a concrete host count (sender plus
// receivers).
func (s Spec) Validate(hosts int) error {
	if err := s.Check(); err != nil {
		return err
	}
	if hosts < 1 {
		return fmt.Errorf("topo: need at least one host")
	}
	if cap := s.Capacity(); cap > 0 && hosts > cap {
		return fmt.Errorf("topo: %v holds at most %d hosts, got %d", s, cap, hosts)
	}
	return nil
}

// Capacity returns the maximum host count the spec can hold, or 0 for
// unbounded (Single, TwoSwitch, and Star with balanced placement).
func (s Spec) Capacity() int {
	if (s.Kind == Star || s.Kind == FatTree) && s.HostsPerLeaf > 0 {
		return s.Leaves * s.HostsPerLeaf
	}
	return 0
}

// Domains returns the number of hosts on each host-bearing switch, in
// host order. The protocol-scaling helpers size ACK-aggregation chains
// and ring partitions from these switch-domain boundaries.
func (s Spec) Domains(hosts int) []int {
	switch s.Kind {
	case Single:
		return []int{hosts}
	case TwoSwitch:
		if hosts <= 16 {
			return []int{hosts}
		}
		return []int{16, hosts - 16}
	default:
		counts := s.leafCounts(hosts)
		var out []int
		for _, c := range counts {
			if c > 0 {
				out = append(out, c)
			}
		}
		return out
	}
}

// MaxDomain returns the largest host domain (see Domains).
func (s Spec) MaxDomain(hosts int) int {
	m := 0
	for _, d := range s.Domains(hosts) {
		if d > m {
			m = d
		}
	}
	return m
}

// leafCounts distributes hosts across the leaves: sequential fill when
// HostsPerLeaf caps each leaf, otherwise a balanced contiguous split.
func (s Spec) leafCounts(hosts int) []int {
	counts := make([]int, s.Leaves)
	if s.HostsPerLeaf > 0 {
		rest := hosts
		for i := range counts {
			c := s.HostsPerLeaf
			if c > rest {
				c = rest
			}
			counts[i] = c
			rest -= c
		}
		return counts
	}
	base, extra := hosts/s.Leaves, hosts%s.Leaves
	for i := range counts {
		counts[i] = base
		if i < extra {
			counts[i]++
		}
	}
	return counts
}

// SwitchSpec is one switch in a Layout, in creation order.
type SwitchSpec struct {
	// Name appears in diagnostics.
	Name string
	// Rate is the switch's port line rate.
	Rate ethernet.Rate
}

// Trunk is one inter-switch link in a Layout. The builder creates the
// A-side port first, then the B side, matching the legacy
// ConnectSwitch order.
type Trunk struct {
	// A and B index Layout.Switches.
	A, B int
	// Rate is the trunk line rate.
	Rate ethernet.Rate
	// Flood marks the trunk as part of the flood spanning tree:
	// multicast/broadcast/unknown-unicast frames traverse only flooding
	// trunks, so fabrics with redundant paths (fat-trees) stay
	// loop-free. Non-flood trunks still carry table-routed unicast.
	Flood bool
}

// Layout is a concrete wiring plan: the expansion of a Spec for a
// given host count. Everything is ordered deterministically, so
// building the same Layout twice yields byte-identical simulations.
type Layout struct {
	Spec  Spec
	Hosts int
	// Switches in creation order.
	Switches []SwitchSpec
	// HostSwitch maps each host (by index = protocol rank) to the
	// switch it attaches to.
	HostSwitch []int
	// Trunks in creation order (created after every host port, so host
	// ports keep the low port indices, as the legacy builder wired them).
	Trunks []Trunk
	// routes[s][h] is the index into Trunks of the trunk carrying
	// unicast traffic from switch s toward host h, or -1 when h is
	// local to s. Equal-cost fat-tree paths are spread deterministically
	// by (switch + host) so acknowledgment implosions load-balance
	// across spines.
	routes [][]int
}

// Layout expands the spec for hosts hosts. defRate substitutes for any
// unset link rate (the runner's default; zero falls back to 100 Mbps).
func (s Spec) Layout(hosts int, defRate ethernet.Rate) (*Layout, error) {
	if err := s.Validate(hosts); err != nil {
		return nil, err
	}
	if defRate == 0 {
		defRate = ethernet.Rate100Mbps
	}
	edge := s.EdgeRate
	if edge == 0 {
		edge = defRate
	}
	trunk := s.TrunkRate
	if trunk == 0 {
		trunk = edge
		if s.Oversub > 0 {
			trunk = edge / ethernet.Rate(s.Oversub)
			if trunk < 1 {
				return nil, fmt.Errorf("topo: oversubscription %d leaves no trunk bandwidth at edge rate %s",
					s.Oversub, FormatRate(edge))
			}
		}
	}

	l := &Layout{Spec: s, Hosts: hosts, HostSwitch: make([]int, hosts)}
	switch s.Kind {
	case Single:
		l.Switches = []SwitchSpec{{Name: "A", Rate: edge}}
	case TwoSwitch:
		l.Switches = []SwitchSpec{{Name: "A", Rate: edge}}
		if hosts > 16 {
			l.Switches = append(l.Switches, SwitchSpec{Name: "B", Rate: edge})
			for h := 16; h < hosts; h++ {
				l.HostSwitch[h] = 1
			}
			l.Trunks = []Trunk{{A: 0, B: 1, Rate: trunk, Flood: true}}
		}
	case Star:
		counts := s.leafCounts(hosts)
		for i := range counts {
			l.Switches = append(l.Switches, SwitchSpec{Name: fmt.Sprintf("L%d", i), Rate: edge})
		}
		core := len(l.Switches)
		l.Switches = append(l.Switches, SwitchSpec{Name: "C", Rate: edge})
		l.placeHosts(counts)
		for i := range counts {
			l.Trunks = append(l.Trunks, Trunk{A: i, B: core, Rate: trunk})
		}
	case FatTree:
		counts := s.leafCounts(hosts)
		for i := range counts {
			l.Switches = append(l.Switches, SwitchSpec{Name: fmt.Sprintf("L%d", i), Rate: edge})
		}
		for sp := 0; sp < s.Spines; sp++ {
			l.Switches = append(l.Switches, SwitchSpec{Name: fmt.Sprintf("S%d", sp), Rate: edge})
		}
		l.placeHosts(counts)
		for i := range counts {
			for sp := 0; sp < s.Spines; sp++ {
				l.Trunks = append(l.Trunks, Trunk{A: i, B: s.Leaves + sp, Rate: trunk})
			}
		}
	}
	l.markFloodTree()
	l.buildRoutes()
	return l, nil
}

// placeHosts assigns hosts contiguously to the leaves per counts.
func (l *Layout) placeHosts(counts []int) {
	h := 0
	for leaf, c := range counts {
		for i := 0; i < c; i++ {
			l.HostSwitch[h] = leaf
			h++
		}
	}
}

// markFloodTree marks a spanning tree over the trunks (breadth-first
// from switch 0, trunks considered in creation order) so flooding
// never loops. Fabrics that are already trees keep every trunk.
func (l *Layout) markFloodTree() {
	reached := make([]bool, len(l.Switches))
	reached[0] = true
	frontier := []int{0}
	for len(frontier) > 0 {
		var next []int
		for _, s := range frontier {
			for t := range l.Trunks {
				tr := &l.Trunks[t]
				var peer int
				switch {
				case tr.A == s:
					peer = tr.B
				case tr.B == s:
					peer = tr.A
				default:
					continue
				}
				if !reached[peer] {
					reached[peer] = true
					tr.Flood = true
					next = append(next, peer)
				}
			}
		}
		frontier = next
	}
}

// buildRoutes computes the per-switch unicast next hop for every host:
// shortest trunk paths, with equal-cost ties spread by (switch + host).
func (l *Layout) buildRoutes() {
	ns := len(l.Switches)
	adj := make([][]int, ns) // trunk indices incident to each switch
	for t, tr := range l.Trunks {
		adj[tr.A] = append(adj[tr.A], t)
		adj[tr.B] = append(adj[tr.B], t)
	}
	// dist[d][s]: hops from switch s to destination switch d.
	dist := make([][]int, ns)
	for d := 0; d < ns; d++ {
		dist[d] = make([]int, ns)
		for i := range dist[d] {
			dist[d][i] = -1
		}
		dist[d][d] = 0
		frontier := []int{d}
		for len(frontier) > 0 {
			var next []int
			for _, s := range frontier {
				for _, t := range adj[s] {
					peer := l.Trunks[t].A + l.Trunks[t].B - s
					if dist[d][peer] < 0 {
						dist[d][peer] = dist[d][s] + 1
						next = append(next, peer)
					}
				}
			}
			frontier = next
		}
	}
	l.routes = make([][]int, ns)
	for s := 0; s < ns; s++ {
		l.routes[s] = make([]int, l.Hosts)
		for h := 0; h < l.Hosts; h++ {
			d := l.HostSwitch[h]
			if d == s {
				l.routes[s][h] = -1
				continue
			}
			var candidates []int
			for _, t := range adj[s] {
				peer := l.Trunks[t].A + l.Trunks[t].B - s
				if dist[d][peer] >= 0 && dist[d][peer] == dist[d][s]-1 {
					candidates = append(candidates, t)
				}
			}
			if len(candidates) == 0 {
				l.routes[s][h] = -1 // disconnected; cannot happen for built kinds
				continue
			}
			l.routes[s][h] = candidates[(s+h)%len(candidates)]
		}
	}
}

// Route returns the trunk index carrying unicast traffic from switch
// sw toward host, or -1 when the host attaches to sw directly.
func (l *Layout) Route(sw, host int) int { return l.routes[sw][host] }
