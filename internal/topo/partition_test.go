package topo

import (
	"testing"

	"rmcast/internal/ethernet"
)

func mustLayout(t *testing.T, spec Spec, hosts int) *Layout {
	t.Helper()
	l, err := spec.Layout(hosts, ethernet.Rate100Mbps)
	if err != nil {
		t.Fatalf("layout %s: %v", spec.String(), err)
	}
	return l
}

// TestPartitionInvariants checks the properties the sharded merge
// relies on, across the canned fabrics and all usable shard counts:
// the sender's switch is alone on shard 0, host-bearing switches get
// monotonically nondecreasing shards in switch-index order, every
// shard is nonempty, and hosts inherit their switch's shard.
func TestPartitionInvariants(t *testing.T) {
	for _, c := range Canned() {
		spec := c.Spec
		hosts := 31
		if cap := spec.Capacity(); cap > 0 && cap < hosts {
			hosts = cap
		}
		l := mustLayout(t, spec, hosts)
		max := l.MaxShards()
		if _, err := l.Partition(max + 1); err == nil {
			t.Errorf("%s: %d shards on %d domains was not rejected", spec.String(), max+1, max)
		}
		if _, err := l.Partition(1); err == nil {
			t.Errorf("%s: 1 shard was not rejected (serial is not a partition)", spec.String())
		}
		for k := 2; k <= max; k++ {
			p, err := l.Partition(k)
			if err != nil {
				t.Fatalf("%s shards=%d: %v", spec.String(), k, err)
			}
			if got := p.SwitchShard[l.HostSwitch[0]]; got != 0 {
				t.Errorf("%s shards=%d: sender switch on shard %d, want 0", spec.String(), k, got)
			}
			used := make([]int, k)
			for s, sh := range p.SwitchShard {
				if sh < 0 || sh >= k {
					t.Fatalf("%s shards=%d: switch %d on shard %d out of range", spec.String(), k, s, sh)
				}
				used[sh]++
			}
			for sh, n := range used {
				if n == 0 {
					t.Errorf("%s shards=%d: shard %d owns no switch", spec.String(), k, sh)
				}
			}
			// Monotone over host-bearing switches in index order: the
			// stable merge tie-break (shard order) must agree with the
			// serial tie order (switch/host construction order).
			hb := l.hostBearing()
			prev := -1
			for _, s := range hb {
				sh := p.SwitchShard[s]
				if sh < prev {
					t.Errorf("%s shards=%d: host-bearing shard sequence not monotone at switch %d (%d after %d)",
						spec.String(), k, s, sh, prev)
				}
				prev = sh
			}
			// Shard 0 holds exactly one host-bearing switch: the sender's.
			zero := 0
			for _, s := range hb {
				if p.SwitchShard[s] == 0 {
					zero++
				}
			}
			if zero != 1 {
				t.Errorf("%s shards=%d: %d host-bearing switches on shard 0, want 1", spec.String(), k, zero)
			}
			for h, s := range l.HostSwitch {
				if p.HostShard[h] != p.SwitchShard[s] {
					t.Fatalf("%s shards=%d: host %d shard %d != its switch's shard %d",
						spec.String(), k, h, p.HostShard[h], p.SwitchShard[s])
				}
			}
		}
	}
}
