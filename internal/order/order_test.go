package order

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"rmcast/internal/cluster"
	"rmcast/internal/core"
)

func orderConfig(p core.Protocol, n int) core.Config {
	cfg := core.Config{Protocol: p, PacketSize: 4000, WindowSize: 8}
	switch p {
	case core.ProtoNAK:
		cfg.PollInterval = 6
	case core.ProtoRing:
		cfg.WindowSize = n + 8
	case core.ProtoTree:
		cfg.TreeHeight = 2
	}
	return cfg
}

// checkTotalOrder asserts the defining property: every member delivered
// the same sequence of (id, payload).
func checkTotalOrder(t *testing.T, s *System, wantCount int) {
	t.Helper()
	ref := s.Deliveries(0)
	if len(ref) != wantCount {
		t.Fatalf("member 0 delivered %d messages, want %d", len(ref), wantCount)
	}
	for g, d := range ref {
		if d.GlobalSeq != uint32(g) {
			t.Fatalf("member 0: delivery %d has global seq %d", g, d.GlobalSeq)
		}
	}
	for m := 1; m < s.Size(); m++ {
		got := s.Deliveries(m)
		if len(got) != wantCount {
			t.Fatalf("member %d delivered %d messages, want %d", m, len(got), wantCount)
		}
		for i := range ref {
			if got[i].ID != ref[i].ID || !bytes.Equal(got[i].Payload, ref[i].Payload) {
				t.Fatalf("member %d delivery %d = %v, member 0 saw %v — total order violated",
					m, i, got[i].ID, ref[i].ID)
			}
		}
	}
}

func TestSingleSubmitterOrdered(t *testing.T) {
	s, err := NewSystem(cluster.Default(4), orderConfig(core.ProtoNAK, 4))
	if err != nil {
		t.Fatal(err)
	}
	const count = 5
	for i := 0; i < count; i++ {
		s.Submit(time.Duration(i)*time.Millisecond, 2, []byte(fmt.Sprintf("msg-%d", i)))
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	checkTotalOrder(t, s, count)
	// A single submitter's messages must additionally respect FIFO.
	for i, d := range s.Deliveries(0) {
		if d.ID.LocalSeq != uint32(i) {
			t.Fatalf("FIFO violated: position %d has local seq %d", i, d.ID.LocalSeq)
		}
	}
}

func TestConcurrentSubmittersAgree(t *testing.T) {
	for _, p := range []core.Protocol{core.ProtoACK, core.ProtoNAK, core.ProtoRing, core.ProtoTree} {
		t.Run(p.String(), func(t *testing.T) {
			n := 5
			s, err := NewSystem(cluster.Default(n), orderConfig(p, n))
			if err != nil {
				t.Fatal(err)
			}
			// Every member submits two messages at nearly the same time:
			// the racing dissemination sessions force real ordering work.
			count := 0
			for m := 0; m <= n; m++ {
				for k := 0; k < 2; k++ {
					s.Submit(time.Duration(k*100)*time.Microsecond, m,
						[]byte(fmt.Sprintf("from-%d-#%d", m, k)))
					count++
				}
			}
			if _, err := s.Run(); err != nil {
				t.Fatal(err)
			}
			checkTotalOrder(t, s, count)
		})
	}
}

func TestTotalOrderSurvivesLoss(t *testing.T) {
	n := 4
	ccfg := cluster.Default(n)
	ccfg.LossRate = 0.005
	ccfg.Seed = 31
	ccfg.Deadline = 5 * time.Minute
	s, err := NewSystem(ccfg, orderConfig(core.ProtoNAK, n))
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for m := 0; m <= n; m++ {
		s.Submit(time.Duration(m)*200*time.Microsecond, m, cluster.MakeMessage(9000+m))
		count++
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	checkTotalOrder(t, s, count)
}

func TestSequencerReceptionOrderRespected(t *testing.T) {
	// The sequencer's own early submission must order before a remote
	// member's later one (the sequencer has its message instantly).
	s, err := NewSystem(cluster.Default(3), orderConfig(core.ProtoACK, 3))
	if err != nil {
		t.Fatal(err)
	}
	s.Submit(0, 0, []byte("sequencer-first"))
	s.Submit(5*time.Millisecond, 3, []byte("remote-later"))
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	checkTotalOrder(t, s, 2)
	d := s.Deliveries(1)
	if string(d[0].Payload) != "sequencer-first" {
		t.Fatalf("order inverted: %q first", d[0].Payload)
	}
}

func TestLargePayloadsOrdered(t *testing.T) {
	n := 3
	s, err := NewSystem(cluster.Default(n), orderConfig(core.ProtoRing, n))
	if err != nil {
		t.Fatal(err)
	}
	for m := 0; m <= n; m++ {
		s.Submit(0, m, cluster.MakeMessage(60000+m*7))
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	checkTotalOrder(t, s, n+1)
	// Payload sizes identify the submitters uniquely; verify integrity.
	for _, d := range s.Deliveries(2) {
		want := cluster.MakeMessage(60000 + d.ID.Member*7)
		if !bytes.Equal(d.Payload, want) {
			t.Fatalf("member %d payload corrupted in ordered delivery", d.ID.Member)
		}
	}
}

func TestSubmitOutOfRangePanics(t *testing.T) {
	s, err := NewSystem(cluster.Default(2), orderConfig(core.ProtoACK, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Submit(99) did not panic")
		}
	}()
	s.Submit(0, 99, []byte("x"))
}

func BenchmarkTotalOrderThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := NewSystem(cluster.Default(7), orderConfig(core.ProtoNAK, 7))
		if err != nil {
			b.Fatal(err)
		}
		count := 0
		for m := 0; m < s.Size(); m++ {
			s.Submit(0, m, cluster.MakeMessage(8000))
			count++
		}
		if _, err := s.Run(); err != nil {
			b.Fatal(err)
		}
		if len(s.Deliveries(0)) != count {
			b.Fatal("missing deliveries")
		}
	}
}
