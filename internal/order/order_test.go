package order

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"rmcast/internal/cluster"
	"rmcast/internal/core"
)

func orderConfig(p core.Protocol, n int) core.Config {
	cfg := core.Config{Protocol: p, PacketSize: 4000, WindowSize: 8}
	switch p {
	case core.ProtoNAK:
		cfg.PollInterval = 6
	case core.ProtoRing:
		cfg.WindowSize = n + 8
	case core.ProtoTree:
		cfg.TreeHeight = 2
	}
	return cfg
}

// checkTotalOrder asserts the defining property: every member delivered
// the same sequence of (id, payload).
func checkTotalOrder(t *testing.T, s *System, wantCount int) {
	t.Helper()
	ref := s.Deliveries(0)
	if len(ref) != wantCount {
		t.Fatalf("member 0 delivered %d messages, want %d", len(ref), wantCount)
	}
	for g, d := range ref {
		if d.GlobalSeq != uint32(g) {
			t.Fatalf("member 0: delivery %d has global seq %d", g, d.GlobalSeq)
		}
	}
	for m := 1; m < s.Size(); m++ {
		got := s.Deliveries(m)
		if len(got) != wantCount {
			t.Fatalf("member %d delivered %d messages, want %d", m, len(got), wantCount)
		}
		for i := range ref {
			if got[i].ID != ref[i].ID || !bytes.Equal(got[i].Payload, ref[i].Payload) {
				t.Fatalf("member %d delivery %d = %v, member 0 saw %v — total order violated",
					m, i, got[i].ID, ref[i].ID)
			}
		}
	}
}

func TestSingleSubmitterOrdered(t *testing.T) {
	s, err := NewSystem(cluster.Default(4), orderConfig(core.ProtoNAK, 4))
	if err != nil {
		t.Fatal(err)
	}
	const count = 5
	for i := 0; i < count; i++ {
		s.Submit(time.Duration(i)*time.Millisecond, 2, []byte(fmt.Sprintf("msg-%d", i)))
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	checkTotalOrder(t, s, count)
	// A single submitter's messages must additionally respect FIFO.
	for i, d := range s.Deliveries(0) {
		if d.ID.LocalSeq != uint32(i) {
			t.Fatalf("FIFO violated: position %d has local seq %d", i, d.ID.LocalSeq)
		}
	}
}

func TestConcurrentSubmittersAgree(t *testing.T) {
	for _, p := range []core.Protocol{core.ProtoACK, core.ProtoNAK, core.ProtoRing, core.ProtoTree} {
		t.Run(p.String(), func(t *testing.T) {
			n := 5
			s, err := NewSystem(cluster.Default(n), orderConfig(p, n))
			if err != nil {
				t.Fatal(err)
			}
			// Every member submits two messages at nearly the same time:
			// the racing dissemination sessions force real ordering work.
			count := 0
			for m := 0; m <= n; m++ {
				for k := 0; k < 2; k++ {
					s.Submit(time.Duration(k*100)*time.Microsecond, m,
						[]byte(fmt.Sprintf("from-%d-#%d", m, k)))
					count++
				}
			}
			if _, err := s.Run(); err != nil {
				t.Fatal(err)
			}
			checkTotalOrder(t, s, count)
		})
	}
}

func TestTotalOrderSurvivesLoss(t *testing.T) {
	n := 4
	ccfg := cluster.Default(n)
	ccfg.LossRate = 0.005
	ccfg.Seed = 31
	ccfg.Deadline = 5 * time.Minute
	s, err := NewSystem(ccfg, orderConfig(core.ProtoNAK, n))
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for m := 0; m <= n; m++ {
		s.Submit(time.Duration(m)*200*time.Microsecond, m, cluster.MakeMessage(9000+m))
		count++
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	checkTotalOrder(t, s, count)
}

func TestSequencerReceptionOrderRespected(t *testing.T) {
	// The sequencer's own early submission must order before a remote
	// member's later one (the sequencer has its message instantly).
	s, err := NewSystem(cluster.Default(3), orderConfig(core.ProtoACK, 3))
	if err != nil {
		t.Fatal(err)
	}
	s.Submit(0, 0, []byte("sequencer-first"))
	s.Submit(5*time.Millisecond, 3, []byte("remote-later"))
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	checkTotalOrder(t, s, 2)
	d := s.Deliveries(1)
	if string(d[0].Payload) != "sequencer-first" {
		t.Fatalf("order inverted: %q first", d[0].Payload)
	}
}

func TestLargePayloadsOrdered(t *testing.T) {
	n := 3
	s, err := NewSystem(cluster.Default(n), orderConfig(core.ProtoRing, n))
	if err != nil {
		t.Fatal(err)
	}
	for m := 0; m <= n; m++ {
		s.Submit(0, m, cluster.MakeMessage(60000+m*7))
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	checkTotalOrder(t, s, n+1)
	// Payload sizes identify the submitters uniquely; verify integrity.
	for _, d := range s.Deliveries(2) {
		want := cluster.MakeMessage(60000 + d.ID.Member*7)
		if !bytes.Equal(d.Payload, want) {
			t.Fatalf("member %d payload corrupted in ordered delivery", d.ID.Member)
		}
	}
}

func TestSubmitOutOfRangePanics(t *testing.T) {
	s, err := NewSystem(cluster.Default(2), orderConfig(core.ProtoACK, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Submit(99) did not panic")
		}
	}()
	s.Submit(0, 99, []byte("x"))
}

func BenchmarkTotalOrderThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := NewSystem(cluster.Default(7), orderConfig(core.ProtoNAK, 7))
		if err != nil {
			b.Fatal(err)
		}
		count := 0
		for m := 0; m < s.Size(); m++ {
			s.Submit(0, m, cluster.MakeMessage(8000))
			count++
		}
		if _, err := s.Run(); err != nil {
			b.Fatal(err)
		}
		if len(s.Deliveries(0)) != count {
			b.Fatal("missing deliveries")
		}
	}
}

// Table-driven edge cases for the ordering layer's pure pieces: wire
// codecs and the member hold-back/delivery state machine.
func TestOrderEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		run  func(t *testing.T)
	}{
		{"short data payload rejected", func(t *testing.T) {
			if _, _, err := decodeData([]byte{1, 2, 3}); err == nil {
				t.Fatal("decodeData accepted a 3-byte payload")
			}
		}},
		{"empty body round-trips", func(t *testing.T) {
			id := MsgID{Member: 7, LocalSeq: 42}
			got, body, err := decodeData(encodeData(id, nil))
			if err != nil || got != id || len(body) != 0 {
				t.Fatalf("round trip = (%v, %d bytes, %v), want (%v, 0 bytes, nil)", got, len(body), err, id)
			}
		}},
		{"malformed assignment payload rejected", func(t *testing.T) {
			b := encodeAssignments([]assignment{{id: MsgID{Member: 1}, global: 0}})
			if _, err := decodeAssignments(b[:len(b)-1]); err == nil {
				t.Fatal("decodeAssignments accepted a truncated payload")
			}
		}},
		{"assignment batch round-trips", func(t *testing.T) {
			in := []assignment{
				{id: MsgID{Member: 0, LocalSeq: 0}, global: 0},
				{id: MsgID{Member: 3, LocalSeq: 9}, global: 1},
			}
			enc := encodeAssignments(in)
			if !isAssignments(enc) {
				t.Fatal("encoded assignments not recognized")
			}
			out, err := decodeAssignments(enc)
			if err != nil || len(out) != len(in) {
				t.Fatalf("decode = (%v, %v)", out, err)
			}
			for i := range in {
				if out[i] != in[i] {
					t.Fatalf("assignment %d = %v, want %v", i, out[i], in[i])
				}
			}
		}},
		{"duplicate data and assignments deliver once", func(t *testing.T) {
			m := &member{data: map[MsgID][]byte{}, order: map[uint32]MsgID{}}
			id := MsgID{Member: 2, LocalSeq: 0}
			m.onData(id, []byte("x"))
			m.onData(id, []byte("x"))
			m.onAssignment(assignment{id: id, global: 0})
			m.onAssignment(assignment{id: id, global: 0})
			if len(m.Deliveries) != 1 {
				t.Fatalf("%d deliveries after duplicates, want exactly 1", len(m.Deliveries))
			}
		}},
		{"delivery holds back across a global-sequence gap", func(t *testing.T) {
			m := &member{data: map[MsgID][]byte{}, order: map[uint32]MsgID{}}
			a, b := MsgID{Member: 1, LocalSeq: 0}, MsgID{Member: 1, LocalSeq: 1}
			m.onData(a, []byte("a"))
			m.onData(b, []byte("b"))
			// Assignment for global 1 arrives first: nothing may deliver.
			m.onAssignment(assignment{id: b, global: 1})
			if len(m.Deliveries) != 0 {
				t.Fatalf("delivered %d messages past a gap at global 0", len(m.Deliveries))
			}
			m.onAssignment(assignment{id: a, global: 0})
			if len(m.Deliveries) != 2 {
				t.Fatalf("delivered %d messages after the gap filled, want 2", len(m.Deliveries))
			}
			if m.Deliveries[0].ID != a || m.Deliveries[1].ID != b {
				t.Fatalf("delivery order %v, %v — want %v then %v",
					m.Deliveries[0].ID, m.Deliveries[1].ID, a, b)
			}
		}},
		{"assignment before data holds back", func(t *testing.T) {
			m := &member{data: map[MsgID][]byte{}, order: map[uint32]MsgID{}}
			id := MsgID{Member: 1, LocalSeq: 0}
			m.onAssignment(assignment{id: id, global: 0})
			if len(m.Deliveries) != 0 {
				t.Fatal("delivered before the data arrived")
			}
			m.onData(id, []byte("late"))
			if len(m.Deliveries) != 1 {
				t.Fatalf("delivered %d after data arrived, want 1", len(m.Deliveries))
			}
		}},
		{"minimum group totally orders", func(t *testing.T) {
			// NumReceivers=1 is the smallest legal cluster: sequencer + one.
			s, err := NewSystem(cluster.Default(1), orderConfig(core.ProtoACK, 1))
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 3; i++ {
				s.Submit(time.Duration(i)*time.Millisecond, i%2, []byte(fmt.Sprintf("m%d", i)))
			}
			if _, err := s.Run(); err != nil {
				t.Fatal(err)
			}
			checkTotalOrder(t, s, 3)
		}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) { c.run(t) })
	}
}
