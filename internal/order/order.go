// Package order builds totally ordered reliable multicast on top of the
// 1→N reliable multicast sessions the paper studies. The paper's
// related-work lineage — Chang-Maxemchuk [3] and the totally ordered
// protocol of Whetten et al. [25] — is about exactly this layer: many
// senders, one agreed delivery order at every member.
//
// The design is the classic fixed-sequencer scheme, chosen for the same
// reason the paper adapts its protocols to LANs: on a single-switch
// cluster the sequencer is one hop from everyone, so the coordination
// cost is a small constant, not a scaling bottleneck.
//
//   - Any member disseminates its message to the whole group with an
//     ordinary reliable multicast session (its own root, its own port).
//   - The sequencer (member 0) assigns global sequence numbers in the
//     order it *receives* disseminated messages, and announces
//     assignments — batched — with reliable multicast sessions of its
//     own.
//   - Every member holds back received messages until the sequencer's
//     assignment arrives, then delivers strictly in global order.
//
// Reliability of both dissemination and announcements is inherited from
// the underlying protocol (any of ACK/NAK/ring/tree), so total order
// holds under packet loss too — asserted by the package tests.
package order

import (
	"encoding/binary"
	"fmt"
	"time"

	"rmcast/internal/cluster"
	"rmcast/internal/core"
)

// MsgID identifies a submitted message before ordering: the submitting
// member and its local sequence number.
type MsgID struct {
	Member   int
	LocalSeq uint32
}

// Delivery is one totally ordered delivery at one member.
type Delivery struct {
	GlobalSeq uint32
	ID        MsgID
	Payload   []byte
}

// System is a totally ordered multicast group over a simulated cluster.
// Build it, enqueue submissions with Submit, then Run.
type System struct {
	c        *cluster.Cluster
	pcfg     core.Config
	nextPort int

	members []*member
	subs    []submission

	// Sequencer state (member 0).
	nextGlobal   uint32
	pendingAsgn  []assignment
	asgnInFlight bool

	totalSubmitted int
	deadline       time.Duration
}

type submission struct {
	at     time.Duration
	member int
	msg    []byte
}

type assignment struct {
	id     MsgID
	global uint32
}

// member is the per-host ordering state.
type member struct {
	sys  *System
	host int

	nextLocal uint32
	// undelivered messages keyed by pre-order id.
	data map[MsgID][]byte
	// assignments known, keyed by global sequence.
	order map[uint32]MsgID
	// nextDeliver is the next global sequence to deliver.
	nextDeliver uint32

	Deliveries []Delivery
}

// NewSystem builds the group over a fresh cluster. pcfg is the
// underlying reliable multicast configuration (any protocol).
func NewSystem(ccfg cluster.Config, pcfg core.Config) (*System, error) {
	pcfg.NumReceivers = ccfg.NumReceivers
	if _, err := pcfg.Normalize(); err != nil {
		return nil, err
	}
	c, err := cluster.New(ccfg)
	if err != nil {
		return nil, err
	}
	s := &System{
		c:        c,
		pcfg:     pcfg,
		nextPort: 7100,
		deadline: ccfg.Deadline,
	}
	for h := 0; h <= ccfg.NumReceivers; h++ {
		s.members = append(s.members, &member{
			sys:   s,
			host:  h,
			data:  make(map[MsgID][]byte),
			order: map[uint32]MsgID{},
		})
	}
	return s, nil
}

// Size returns the number of members.
func (s *System) Size() int { return len(s.members) }

// Deliveries returns member m's ordered deliveries so far.
func (s *System) Deliveries(m int) []Delivery { return s.members[m].Deliveries }

// Submit enqueues msg for total-order multicast by member m at virtual
// time at (relative to Run's start). Call before Run.
func (s *System) Submit(at time.Duration, m int, msg []byte) {
	if m < 0 || m >= len(s.members) {
		panic(fmt.Sprintf("order: member %d out of range", m))
	}
	s.subs = append(s.subs, submission{at: at, member: m, msg: msg})
}

// Run disseminates and orders every submitted message, returning the
// total virtual time once every member has delivered all of them.
func (s *System) Run() (time.Duration, error) {
	s.totalSubmitted = len(s.subs)
	begin := s.c.Sim.Now()
	for _, sub := range s.subs {
		sub := sub
		s.c.Sim.After(sub.at, func() { s.disseminate(sub.member, sub.msg) })
	}
	s.subs = nil
	for s.c.Sim.Pending() > 0 && !s.allDelivered() {
		s.c.Sim.Step()
		if s.c.Sim.Now()-begin > s.deadline {
			return s.c.Sim.Now() - begin, fmt.Errorf("order: run exceeded deadline %v", s.deadline)
		}
	}
	if !s.allDelivered() {
		return s.c.Sim.Now() - begin, fmt.Errorf("order: stalled with no pending events")
	}
	return s.c.Sim.Now() - begin, nil
}

func (s *System) allDelivered() bool {
	for _, m := range s.members {
		if len(m.Deliveries) < s.totalSubmitted {
			return false
		}
	}
	return true
}

// wire format for disseminated payloads: member(4) localSeq(4) body.
func encodeData(id MsgID, body []byte) []byte {
	out := make([]byte, 8+len(body))
	binary.BigEndian.PutUint32(out[0:4], uint32(id.Member))
	binary.BigEndian.PutUint32(out[4:8], id.LocalSeq)
	copy(out[8:], body)
	return out
}

func decodeData(b []byte) (MsgID, []byte, error) {
	if len(b) < 8 {
		return MsgID{}, nil, fmt.Errorf("order: short data payload (%d bytes)", len(b))
	}
	id := MsgID{
		Member:   int(binary.BigEndian.Uint32(b[0:4])),
		LocalSeq: binary.BigEndian.Uint32(b[4:8]),
	}
	return id, b[8:], nil
}

// wire format for assignment announcements: repeated
// member(4) localSeq(4) globalSeq(4); a leading 0xFFFFFFFF marks the
// announcement type (a data payload never starts with member 2^32-1).
const asgnMagic = 0xFFFFFFFF

func encodeAssignments(asgns []assignment) []byte {
	out := make([]byte, 4+12*len(asgns))
	binary.BigEndian.PutUint32(out[0:4], asgnMagic)
	for i, a := range asgns {
		off := 4 + 12*i
		binary.BigEndian.PutUint32(out[off:off+4], uint32(a.id.Member))
		binary.BigEndian.PutUint32(out[off+4:off+8], a.id.LocalSeq)
		binary.BigEndian.PutUint32(out[off+8:off+12], a.global)
	}
	return out
}

func isAssignments(b []byte) bool {
	return len(b) >= 4 && binary.BigEndian.Uint32(b[0:4]) == asgnMagic
}

func decodeAssignments(b []byte) ([]assignment, error) {
	if (len(b)-4)%12 != 0 {
		return nil, fmt.Errorf("order: malformed assignment payload (%d bytes)", len(b))
	}
	n := (len(b) - 4) / 12
	out := make([]assignment, n)
	for i := 0; i < n; i++ {
		off := 4 + 12*i
		out[i] = assignment{
			id: MsgID{
				Member:   int(binary.BigEndian.Uint32(b[off : off+4])),
				LocalSeq: binary.BigEndian.Uint32(b[off+4 : off+8]),
			},
			global: binary.BigEndian.Uint32(b[off+8 : off+12]),
		}
	}
	return out, nil
}

// disseminate multicasts member m's message to the group and feeds the
// local copies into the ordering layer.
func (s *System) disseminate(m int, body []byte) {
	mem := s.members[m]
	id := MsgID{Member: m, LocalSeq: mem.nextLocal}
	mem.nextLocal++
	payload := encodeData(id, body)

	s.startSession(m, payload)
	// The submitter has its own message immediately.
	mem.onData(id, body)
	// If the submitter is the sequencer, it also orders it now;
	// otherwise the sequencer orders on reception.
	if m == 0 {
		s.assign(id)
	}
}

// startSession launches one reliable multicast session from root and
// routes deliveries into the ordering layer.
func (s *System) startSession(root int, payload []byte) {
	s.nextPort++
	ses, err := cluster.NewSession(s.c, core.NodeID(root), s.nextPort, s.pcfg, payload)
	if err != nil {
		// Configuration was validated in NewSystem; a failure here is a
		// programming error.
		panic(err)
	}
	ses.OnDeliver = func(host core.NodeID, msg []byte) {
		s.onSessionDelivery(int(host), msg)
	}
}

// onSessionDelivery handles a reliably delivered payload at a host:
// either a data message or a sequencer announcement.
func (s *System) onSessionDelivery(host int, payload []byte) {
	mem := s.members[host]
	if isAssignments(payload) {
		asgns, err := decodeAssignments(payload)
		if err != nil {
			return
		}
		for _, a := range asgns {
			mem.onAssignment(a)
		}
		return
	}
	id, body, err := decodeData(payload)
	if err != nil {
		return
	}
	mem.onData(id, body)
	if host == 0 {
		s.assign(id)
	}
}

// assign gives id the next global sequence number and schedules its
// announcement (sequencer only).
func (s *System) assign(id MsgID) {
	a := assignment{id: id, global: s.nextGlobal}
	s.nextGlobal++
	// The sequencer learns its own assignment immediately.
	s.members[0].onAssignment(a)
	s.pendingAsgn = append(s.pendingAsgn, a)
	s.flushAssignments()
}

// flushAssignments announces pending assignments when no announcement
// session is in flight; assignments arriving meanwhile batch into the
// next session.
func (s *System) flushAssignments() {
	if s.asgnInFlight || len(s.pendingAsgn) == 0 {
		return
	}
	batch := s.pendingAsgn
	s.pendingAsgn = nil
	s.asgnInFlight = true
	s.nextPort++
	ses, err := cluster.NewSession(s.c, 0, s.nextPort, s.pcfg, encodeAssignments(batch))
	if err != nil {
		panic(err)
	}
	delivered := 0
	ses.OnDeliver = func(host core.NodeID, msg []byte) {
		s.onSessionDelivery(int(host), msg)
		delivered++
		if delivered == s.c.Cfg.NumReceivers {
			// Announcement fully delivered: the next batch may go out.
			s.asgnInFlight = false
			s.flushAssignments()
		}
	}
}

// onData stores a received message and tries to deliver.
func (m *member) onData(id MsgID, body []byte) {
	if _, dup := m.data[id]; dup {
		return
	}
	m.data[id] = body
	m.tryDeliver()
}

// onAssignment records a global ordering decision and tries to deliver.
func (m *member) onAssignment(a assignment) {
	if _, dup := m.order[a.global]; dup {
		return
	}
	m.order[a.global] = a.id
	m.tryDeliver()
}

// tryDeliver delivers consecutively ordered messages whose data has
// arrived. Total order: every member walks global sequences 0,1,2,...
func (m *member) tryDeliver() {
	for {
		id, ok := m.order[m.nextDeliver]
		if !ok {
			return
		}
		body, ok := m.data[id]
		if !ok {
			return
		}
		m.Deliveries = append(m.Deliveries, Delivery{
			GlobalSeq: m.nextDeliver,
			ID:        id,
			Payload:   body,
		})
		delete(m.order, m.nextDeliver)
		delete(m.data, id)
		m.nextDeliver++
	}
}
