// Package unicast implements a TCP-like reliable unicast byte stream
// over the simulated network. It is the baseline the paper's Figure 8
// compares reliable multicast against: distributing a file to N
// receivers by N sequential reliable unicast transfers, which is what an
// MPI implementation layered on TCP point-to-point effectively does.
//
// The model is deliberately simple — fixed MSS segmentation, a fixed
// window (no slow start: LAN transfers of interest are far longer than
// one RTT), cumulative ACKs with delayed acking every second segment,
// and Go-Back-N recovery — because the baseline only needs to saturate
// the link like 2001-era kernel TCP did.
package unicast

import (
	"errors"
	"time"

	"rmcast/internal/core"
	"rmcast/internal/packet"
	"rmcast/internal/window"
)

// Config parameterizes a stream.
type Config struct {
	// MSS is the maximum segment size in payload bytes (1448 ≈ Ethernet
	// MTU minus IP/TCP headers and options).
	MSS int
	// WindowSegments is the send window in segments (22 × 1448 ≈ the
	// 32 KB default window of Linux 2.2).
	WindowSegments int
	// AckEvery makes the receiver acknowledge every k'th in-order
	// segment (delayed ACK; the last segment is always acknowledged).
	AckEvery int
	// RetransTimeout is the Go-Back-N retransmission timeout.
	RetransTimeout time.Duration
}

// DefaultConfig returns the Linux-2.2-flavored defaults.
func DefaultConfig() Config {
	return Config{
		MSS:            1448,
		WindowSegments: 22,
		AckEvery:       2,
		RetransTimeout: 20 * time.Millisecond,
	}
}

func (c Config) normalize() (Config, error) {
	if c.MSS < 1 {
		return c, errors.New("unicast: MSS must be >= 1")
	}
	if c.WindowSegments < 1 {
		return c, errors.New("unicast: WindowSegments must be >= 1")
	}
	if c.AckEvery < 1 {
		c.AckEvery = 1
	}
	if c.AckEvery >= c.WindowSegments {
		// The window must stay ahead of the delayed-ack stride or the
		// stream stalls until timeout on every window's worth of data.
		return c, errors.New("unicast: AckEvery must be smaller than WindowSegments")
	}
	if c.RetransTimeout == 0 {
		c.RetransTimeout = 20 * time.Millisecond
	}
	return c, nil
}

// Stats counts stream activity.
type Stats struct {
	Segments        uint64
	Retransmissions uint64
	AcksReceived    uint64
	AcksSent        uint64
	Timeouts        uint64
}

// Sender streams one message to a single peer.
type Sender struct {
	env    core.Env
	cfg    Config
	peer   core.NodeID
	onDone func()

	msg      []byte
	msgID    uint32
	count    uint32
	win      *window.Sender
	phase    int // 0 idle, 1 connect, 2 stream, 3 done
	timer    core.TimerID
	timerGen uint64
	lastGBN  time.Duration

	stats Stats
}

// NewSender creates a stream sender toward peer.
func NewSender(env core.Env, cfg Config, peer core.NodeID, onDone func()) (*Sender, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	return &Sender{env: env, cfg: cfg, peer: peer, onDone: onDone, lastGBN: -time.Hour}, nil
}

// Stats returns the stream counters.
func (s *Sender) Stats() Stats { return s.stats }

// Done reports whether the transfer completed.
func (s *Sender) Done() bool { return s.phase == 3 }

// Start begins transferring msg (connection setup, then the stream).
func (s *Sender) Start(msg []byte) {
	if s.phase == 1 || s.phase == 2 {
		panic("unicast: Start while a transfer is in progress")
	}
	s.msg = msg
	s.msgID++
	s.count = uint32((len(msg) + s.cfg.MSS - 1) / s.cfg.MSS)
	if s.count == 0 {
		s.count = 1
	}
	s.win = window.NewSender(s.cfg.WindowSegments, s.count)
	s.phase = 1
	s.sendSyn()
}

func (s *Sender) sendSyn() {
	s.env.Send(s.peer, &packet.Packet{Type: packet.TypeAllocReq, MsgID: s.msgID, Aux: uint32(len(s.msg))})
	s.armTimer()
}

// OnPacket handles control packets from the peer.
func (s *Sender) OnPacket(from core.NodeID, p *packet.Packet) {
	if from != s.peer || p.MsgID != s.msgID {
		return
	}
	switch p.Type {
	case packet.TypeAllocOK:
		if s.phase == 1 {
			s.phase = 2
			s.pump()
		}
	case packet.TypeAck:
		if s.phase != 2 {
			return
		}
		s.stats.AcksReceived++
		if s.win.Ack(p.Seq) {
			if s.win.Done() {
				s.phase = 3
				s.cancelTimer()
				if s.onDone != nil {
					s.onDone()
				}
				return
			}
			s.armTimer()
			s.pump()
		}
	case packet.TypeNak:
		if s.phase == 2 {
			s.goBackN()
		}
	}
}

func (s *Sender) pump() {
	for s.win.CanSend() {
		seq := s.win.Sent()
		s.sendSegment(seq, false)
	}
}

func (s *Sender) sendSegment(seq uint32, retrans bool) {
	off := int(seq) * s.cfg.MSS
	end := off + s.cfg.MSS
	if end > len(s.msg) {
		end = len(s.msg)
	}
	var chunk []byte
	if off < len(s.msg) {
		chunk = s.msg[off:end]
	}
	var flags packet.Flags
	if seq == s.count-1 {
		flags |= packet.FlagLast
	}
	if retrans {
		s.stats.Retransmissions++
	} else {
		s.stats.Segments++
	}
	s.env.Send(s.peer, &packet.Packet{
		Type: packet.TypeData, Flags: flags, MsgID: s.msgID,
		Seq: seq, Aux: uint32(off), Payload: chunk,
	})
}

// goBackN resends the outstanding window, suppressed so that the storm
// of duplicate-ACK NAKs a single drop provokes triggers only one resend.
func (s *Sender) goBackN() {
	now := s.env.Now()
	if now-s.lastGBN < s.cfg.RetransTimeout/4 {
		return
	}
	s.lastGBN = now
	for seq := s.win.Base; seq < s.win.Next; seq++ {
		s.sendSegment(seq, true)
	}
	s.armTimer()
}

func (s *Sender) armTimer() {
	s.cancelTimer()
	s.timerGen++
	gen := s.timerGen
	s.timer = s.env.SetTimer(s.cfg.RetransTimeout, func() {
		if gen != s.timerGen {
			return
		}
		s.timer = 0
		s.stats.Timeouts++
		switch s.phase {
		case 1:
			s.sendSyn()
		case 2:
			s.goBackN()
			if s.timer == 0 {
				s.armTimer() // resend was suppressed; keep the timer alive
			}
		}
	})
}

func (s *Sender) cancelTimer() {
	if s.timer != 0 {
		s.env.CancelTimer(s.timer)
		s.timer = 0
	}
	s.timerGen++
}

// Receiver accepts one stream from a single peer.
type Receiver struct {
	env       core.Env
	cfg       Config
	peer      core.NodeID
	onDeliver func([]byte)

	msgID     uint32
	active    bool
	buf       []byte
	count     uint32
	next      uint32
	sinceAck  int
	delivered bool

	stats Stats
}

// NewReceiver creates a stream receiver for transfers from peer.
func NewReceiver(env core.Env, cfg Config, peer core.NodeID, onDeliver func([]byte)) (*Receiver, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	return &Receiver{env: env, cfg: cfg, peer: peer, onDeliver: onDeliver}, nil
}

// Stats returns the stream counters.
func (r *Receiver) Stats() Stats { return r.stats }

// Delivered reports whether the current message was delivered.
func (r *Receiver) Delivered() bool { return r.delivered }

// OnPacket handles one packet from the peer.
func (r *Receiver) OnPacket(from core.NodeID, p *packet.Packet) {
	if from != r.peer {
		return
	}
	switch p.Type {
	case packet.TypeAllocReq:
		if !r.active || r.msgID != p.MsgID {
			r.active = true
			r.msgID = p.MsgID
			r.buf = make([]byte, int(p.Aux))
			r.count = uint32((int(p.Aux) + r.cfg.MSS - 1) / r.cfg.MSS)
			if r.count == 0 {
				r.count = 1
			}
			r.next = 0
			r.sinceAck = 0
			r.delivered = false
		}
		r.env.Send(r.peer, &packet.Packet{Type: packet.TypeAllocOK, MsgID: r.msgID, Aux: p.Aux})
	case packet.TypeData:
		if !r.active || p.MsgID != r.msgID {
			return
		}
		r.onData(p)
	}
}

func (r *Receiver) onData(p *packet.Packet) {
	switch {
	case p.Seq == r.next:
		off := int(p.Aux)
		if off+len(p.Payload) <= len(r.buf) {
			copy(r.buf[off:], p.Payload)
		}
		r.next++
		r.sinceAck++
		last := p.Flags&packet.FlagLast != 0
		if r.sinceAck >= r.cfg.AckEvery || last {
			r.sendAck()
		}
		if r.next == r.count && !r.delivered {
			r.delivered = true
			if r.onDeliver != nil {
				r.onDeliver(r.buf)
			}
		}
	case p.Seq > r.next:
		// Gap: duplicate-ACK equivalent — tell the sender where we are.
		r.env.Send(r.peer, &packet.Packet{Type: packet.TypeNak, MsgID: r.msgID, Seq: r.next})
	default:
		// Duplicate segment (Go-Back-N resend): re-ack cumulatively.
		r.sendAck()
	}
}

func (r *Receiver) sendAck() {
	r.sinceAck = 0
	r.stats.AcksSent++
	r.env.Send(r.peer, &packet.Packet{Type: packet.TypeAck, MsgID: r.msgID, Seq: r.next})
}
