package unicast

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"rmcast/internal/core"
	"rmcast/internal/packet"
	"rmcast/internal/rng"
	"rmcast/internal/sim"
)

// pipe is a two-endpoint mock network implementing core.Env for stream
// tests: fixed latency, optional drops, codec round-trip per hop.
type pipe struct {
	s       *sim.Simulator
	latency time.Duration
	ends    map[core.NodeID]core.Endpoint
	drop    func(p *packet.Packet) bool
	dropped uint64
}

func newPipe() *pipe {
	return &pipe{s: sim.New(), latency: 150 * time.Microsecond, ends: map[core.NodeID]core.Endpoint{}}
}

type pipeEnv struct {
	p    *pipe
	self core.NodeID
}

func (e *pipeEnv) Now() time.Duration { return e.p.s.Now() }
func (e *pipeEnv) Send(to core.NodeID, pk *packet.Packet) {
	if e.p.drop != nil && e.p.drop(pk) {
		e.p.dropped++
		return
	}
	wire := pk.Encode()
	from := e.self
	e.p.s.After(e.p.latency, func() {
		if ep := e.p.ends[to]; ep != nil {
			q, err := packet.Decode(wire)
			if err != nil {
				panic(err)
			}
			ep.OnPacket(from, q)
		}
	})
}
func (e *pipeEnv) Multicast(pk *packet.Packet) { panic("unicast streams never multicast") }
func (e *pipeEnv) SetTimer(d time.Duration, fn func()) core.TimerID {
	return core.TimerID(e.p.s.After(d, fn))
}
func (e *pipeEnv) CancelTimer(id core.TimerID) { e.p.s.Cancel(sim.EventID(id)) }
func (e *pipeEnv) UserCopy(int)                {}

// transfer runs one stream transfer over a pipe and returns delivery.
func transfer(t *testing.T, cfg Config, msg []byte, drop func(*packet.Packet) bool) ([]byte, *Sender, *Receiver) {
	t.Helper()
	p := newPipe()
	p.drop = drop
	var delivered []byte
	done := false
	snd, err := NewSender(&pipeEnv{p: p, self: 0}, cfg, 1, func() { done = true })
	if err != nil {
		t.Fatal(err)
	}
	rcv, err := NewReceiver(&pipeEnv{p: p, self: 1}, cfg, 0, func(b []byte) { delivered = b })
	if err != nil {
		t.Fatal(err)
	}
	p.ends[0] = snd
	p.ends[1] = rcv
	p.s.After(0, func() { snd.Start(msg) })
	for p.s.Pending() > 0 && !done {
		p.s.Step()
		if p.s.Now() > 2*time.Minute {
			t.Fatal("stream did not complete within the deadline")
		}
	}
	if !done {
		t.Fatal("stream stalled")
	}
	return delivered, snd, rcv
}

func streamPattern(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i*251 + 3)
	}
	return b
}

func TestStreamDeliversIntact(t *testing.T) {
	for _, size := range []int{0, 1, 1447, 1448, 1449, 100_000, 426_502} {
		msg := streamPattern(size)
		got, _, _ := transfer(t, DefaultConfig(), msg, nil)
		if !bytes.Equal(got, msg) {
			t.Fatalf("size %d: corrupted delivery", size)
		}
	}
}

func TestStreamNoRetransmissionsWithoutLoss(t *testing.T) {
	_, snd, _ := transfer(t, DefaultConfig(), streamPattern(200_000), nil)
	st := snd.Stats()
	if st.Retransmissions != 0 || st.Timeouts != 0 {
		t.Errorf("clean run had %d retransmissions, %d timeouts", st.Retransmissions, st.Timeouts)
	}
}

func TestStreamDelayedAcks(t *testing.T) {
	cfg := DefaultConfig()
	_, snd, rcv := transfer(t, cfg, streamPattern(100*1448), nil)
	segs := snd.Stats().Segments
	acks := rcv.Stats().AcksSent
	// Delayed acks: about one ack per AckEvery segments.
	want := segs / uint64(cfg.AckEvery)
	if acks < want || acks > want+2 {
		t.Errorf("acks = %d for %d segments, want ≈ %d (AckEvery=%d)", acks, segs, want, cfg.AckEvery)
	}
}

func TestStreamSurvivesLoss(t *testing.T) {
	r := rng.New(99)
	msg := streamPattern(150_000)
	got, snd, _ := transfer(t, DefaultConfig(), msg, func(*packet.Packet) bool { return r.Bool(0.03) })
	if !bytes.Equal(got, msg) {
		t.Fatal("corrupted under loss")
	}
	if snd.Stats().Retransmissions == 0 {
		t.Error("no retransmissions despite 3% loss")
	}
}

func TestStreamSurvivesSynLoss(t *testing.T) {
	first := true
	msg := streamPattern(5000)
	got, _, _ := transfer(t, DefaultConfig(), msg, func(p *packet.Packet) bool {
		if p.Type == packet.TypeAllocReq && first {
			first = false
			return true
		}
		return false
	})
	if !bytes.Equal(got, msg) {
		t.Fatal("corrupted after SYN loss")
	}
}

func TestStreamSequentialTransfers(t *testing.T) {
	p := newPipe()
	var delivered []byte
	done := false
	cfg := DefaultConfig()
	snd, _ := NewSender(&pipeEnv{p: p, self: 0}, cfg, 1, func() { done = true })
	rcv, _ := NewReceiver(&pipeEnv{p: p, self: 1}, cfg, 0, func(b []byte) { delivered = b })
	p.ends[0] = snd
	p.ends[1] = rcv
	for round := 0; round < 3; round++ {
		msg := streamPattern(10_000 + round*777)
		done = false
		p.s.After(0, func() { snd.Start(msg) })
		for p.s.Pending() > 0 && !done {
			p.s.Step()
		}
		if !done || !bytes.Equal(delivered, msg) {
			t.Fatalf("round %d failed", round)
		}
	}
}

func TestStreamConfigValidation(t *testing.T) {
	bad := []Config{
		{MSS: 0, WindowSegments: 10, AckEvery: 2},
		{MSS: 1448, WindowSegments: 0, AckEvery: 2},
		{MSS: 1448, WindowSegments: 4, AckEvery: 4}, // AckEvery >= window stalls
	}
	for i, cfg := range bad {
		if _, err := NewSender(&pipeEnv{p: newPipe(), self: 0}, cfg, 1, nil); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestStreamStartWhileActivePanics(t *testing.T) {
	p := newPipe()
	snd, _ := NewSender(&pipeEnv{p: p, self: 0}, DefaultConfig(), 1, nil)
	p.ends[0] = snd
	p.s.After(0, func() { snd.Start([]byte("x")) })
	p.s.Step()
	defer func() {
		if recover() == nil {
			t.Fatal("second Start did not panic")
		}
	}()
	snd.Start([]byte("y"))
}

// Property: arbitrary sizes and loss seeds still deliver byte-identical
// content.
func TestStreamRobustQuick(t *testing.T) {
	f := func(sizeRaw uint16, seed uint64, lossPct uint8) bool {
		size := int(sizeRaw) * 7
		loss := float64(lossPct%5) / 100
		r := rng.New(seed)
		p := newPipe()
		p.drop = func(*packet.Packet) bool { return r.Bool(loss) }
		msg := streamPattern(size)
		var delivered []byte
		done := false
		snd, err := NewSender(&pipeEnv{p: p, self: 0}, DefaultConfig(), 1, func() { done = true })
		if err != nil {
			return false
		}
		rcv, err := NewReceiver(&pipeEnv{p: p, self: 1}, DefaultConfig(), 0, func(b []byte) { delivered = b })
		if err != nil {
			return false
		}
		p.ends[0] = snd
		p.ends[1] = rcv
		p.s.After(0, func() { snd.Start(msg) })
		for p.s.Pending() > 0 && !done {
			p.s.Step()
			if p.s.Now() > 5*time.Minute {
				return false
			}
		}
		return done && bytes.Equal(delivered, msg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
