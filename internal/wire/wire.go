// Package wire adapts the v2 frame codec (internal/packet) to a
// transport endpoint: one Codec per node owns the small-message
// batcher, the strict decoder, and the wire-level metrics accounting,
// so the simulated and live transports share one implementation of
// coalescing, compression, and corrupt-frame handling.
//
// internal/packet cannot count into internal/metrics (metrics depends
// on packet for its per-type counters); this package sits above both.
package wire

import (
	"rmcast/internal/metrics"
	"rmcast/internal/packet"
)

// Codec frames one node's traffic in wire format v2.
//
// Multicast data packets that fit the carrier budget are queued in the
// batcher; Arm is invoked on the empty→nonempty transition and must
// schedule FlushBatch to run after the transport finishes its current
// event (a zero-delay timer in the simulator, a posted closure on the
// live event loop), so every data packet a protocol action produces
// back to back shares carrier frames. Anything else — unicast sends,
// control multicasts, oversized data — first flushes the queue, keeping
// frame order consistent with protocol send order.
//
// Codec is not concurrency-safe; confine it to the transport's event
// loop, as both transports confine their sockets.
type Codec struct {
	mx    *metrics.Session
	arm   func()
	send  func(frame []byte)
	batch packet.Batcher
	armed bool
}

// NewCodec builds a codec. minCompress and mtu follow Batcher semantics
// (<=0 disables compression; 0 MTU means packet.DefaultCoalesceMTU).
// arm schedules a future FlushBatch call; send transmits one finished
// multicast frame. mx may be nil (accounting becomes a no-op).
func NewCodec(minCompress, mtu int, mx *metrics.Session, arm func(), send func(frame []byte)) *Codec {
	c := &Codec{mx: mx, arm: arm, send: send}
	c.batch = packet.Batcher{MTU: mtu, MinCompress: minCompress, Emit: c.emit}
	return c
}

func (c *Codec) emit(frame []byte, inner, rawLen int) {
	c.account(frame, inner, rawLen)
	c.send(frame)
}

func (c *Codec) account(frame []byte, inner, rawLen int) {
	compressed := packet.WireFlags(frame[packet.HeaderLenV2-1])&packet.WireCompressed != 0
	c.mx.CountWireFrame(len(frame), rawLen, inner, compressed)
}

// Multicast frames p for the group: coalescible data packets queue for
// the next flush, everything else flushes the queue and goes out now.
func (c *Codec) Multicast(p *packet.Packet) {
	if p.Type == packet.TypeData && c.batch.Fits(p) {
		c.batch.Add(p)
		if !c.armed {
			c.armed = true
			c.arm()
		}
		return
	}
	c.FlushNow()
	frame, raw := packet.EncodeV2(p, c.batch.MinCompress)
	c.emit(frame, 1, raw)
}

// EncodeUnicast flushes queued multicast frames (a unicast reply must
// not overtake the data it reacts to) and returns p's encoded, already
// accounted frame for the caller to address.
func (c *Codec) EncodeUnicast(p *packet.Packet) []byte {
	c.FlushNow()
	frame, raw := packet.EncodeV2(p, c.batch.MinCompress)
	c.account(frame, 1, raw)
	return frame
}

// FlushNow drains the batcher inline. The armed flag stays set: an
// already-scheduled FlushBatch still fires and clears it, collecting
// anything queued in between.
func (c *Codec) FlushNow() { c.batch.Flush() }

// FlushBatch is the callback Arm schedules: it re-enables arming and
// drains the batcher.
func (c *Codec) FlushBatch() {
	c.armed = false
	c.batch.Flush()
}

// Decode strictly decodes one v2 frame, calling emit per logical packet
// (see packet.DecodeFrameV2 for the borrow semantics). Every failure
// counts as a corrupt frame: under a v2 session each peer seals every
// frame it sends, so a frame that fails any guard — including a
// truncation or a magic/version byte flipped by corruption — was
// damaged in flight. The caller drops it; nothing was emitted.
func (c *Codec) Decode(frame []byte, emit func(*packet.Packet)) error {
	err := packet.DecodeFrameV2(frame, emit)
	if err != nil {
		c.mx.CountCorruptFrame()
	}
	return err
}
