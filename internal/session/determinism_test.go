package session

import (
	"context"
	"reflect"
	"testing"
	"time"

	"rmcast/internal/cluster"
	"rmcast/internal/core"
	"rmcast/internal/topo"
	"rmcast/internal/trace"
)

// contentionScenario is the canonical 3-session contention run the
// determinism tests pin: three NAK senders with half-overlapping
// receiver sets spanning both switch domains of the two-switch fabric,
// plus background unicast cross-traffic.
func contentionScenario(shards int) Config {
	spec := topo.TwoSwitchSpec()
	cfg := Config{
		Sessions:     3,
		ReceiversPer: 12,
		Overlap:      0.5,
		Stagger:      2 * time.Millisecond,
		Proto:        core.Config{Protocol: core.ProtoNAK, PacketSize: 1024, WindowSize: 16, PollInterval: 8},
		MsgSize:      200 * 1024,
		Cluster:      cluster.Default(1),
		CrossFlows:   2,
		CrossSize:    64 * 1024,
		CrossRepeat:  3,
	}
	cfg.Cluster.Topo = &spec
	cfg.Cluster.Shards = shards
	return cfg
}

// runContention executes the scenario with per-session tracing and
// returns the session results, the per-session event strings, and the
// cross-traffic completion counts.
func runContention(t *testing.T, shards int) ([]cluster.SessionResult, [][]string, []int) {
	t.Helper()
	ccfg, specs, flows, err := Plan(contentionScenario(shards))
	if err != nil {
		t.Fatal(err)
	}
	bufs := make([]*trace.Buffer, len(specs))
	for i := range specs {
		bufs[i] = trace.New(1 << 20)
		specs[i].Trace = bufs[i]
	}
	res, err := cluster.RunMulti(context.Background(), ccfg, specs, flows)
	if err != nil {
		t.Fatal(err)
	}
	evs := make([][]string, len(bufs))
	for i, b := range bufs {
		if total := b.Total(); total > uint64(len(b.Events())) {
			t.Fatalf("session %d trace overflowed (%d events)", i, total)
		}
		for _, e := range b.Events() {
			evs[i] = append(evs[i], e.String())
		}
	}
	return res.Sessions, evs, res.CrossCompleted
}

// diffTraces reports the first divergence between two per-session event
// streams, for readable failures.
func diffTraces(t *testing.T, e1, e2 [][]string, labelA, labelB string) {
	t.Helper()
	for i := range e1 {
		if len(e1[i]) != len(e2[i]) {
			t.Errorf("session %d: %d vs %d events", i, len(e1[i]), len(e2[i]))
			continue
		}
		for j := range e1[i] {
			if e1[i][j] != e2[i][j] {
				t.Errorf("session %d event %d:\n %s: %s\n %s: %s", i, j, labelA, e1[i][j], labelB, e2[i][j])
				break
			}
		}
	}
}

// TestContentionRerunIdentical proves the multi-session engine is
// deterministic: two serial executions of the 3-session contention
// scenario produce byte-identical per-session traces and deeply equal
// results.
func TestContentionRerunIdentical(t *testing.T) {
	s1, e1, x1 := runContention(t, 0)
	s2, e2, x2 := runContention(t, 0)
	if !reflect.DeepEqual(e1, e2) {
		diffTraces(t, e1, e2, "run1", "run2")
		t.Fatal("reruns traced differently")
	}
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("rerun results differ:\n%+v\n%+v", s1, s2)
	}
	if !reflect.DeepEqual(x1, x2) {
		t.Fatalf("rerun cross-traffic counts differ: %v vs %v", x1, x2)
	}
}

// TestContentionSerialShardedEqual proves the sharded engine replays the
// multi-session scenario exactly: serial and 2-shard executions agree on
// every trace event, every session result, and the cross-traffic counts.
func TestContentionSerialShardedEqual(t *testing.T) {
	s1, e1, x1 := runContention(t, 0)
	s2, e2, x2 := runContention(t, 2)
	if !reflect.DeepEqual(e1, e2) {
		diffTraces(t, e1, e2, "serial", "sharded")
		t.Fatal("serial and sharded traces differ")
	}
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("serial and sharded results differ:\n%+v\n%+v", s1, s2)
	}
	if !reflect.DeepEqual(x1, x2) {
		t.Fatalf("serial and sharded cross-traffic counts differ: %v vs %v", x1, x2)
	}
}

// TestContentionOutcome sanity-checks the scenario itself: every session
// completes and verifies, cross flows all finish, and the goodput split
// is reasonably fair (three identical NAK sessions on one fabric).
func TestContentionOutcome(t *testing.T) {
	res, rep, err := Run(context.Background(), contentionScenario(0))
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !rep.Completed || !rep.Verified {
		t.Fatalf("contention run not completed/verified: %+v", rep)
	}
	if rep.Sessions != 3 || len(rep.PerSessionMbps) != 3 {
		t.Fatalf("expected 3 sessions, got %+v", rep)
	}
	for i, s := range res.Sessions {
		if !s.Completed || !s.Verified {
			t.Errorf("session %d not completed/verified", i)
		}
		if s.ThroughputMbps <= 0 {
			t.Errorf("session %d reported no goodput", i)
		}
	}
	for i, n := range res.CrossCompleted {
		if n != 3 {
			t.Errorf("cross flow %d completed %d of 3 transfers", i, n)
		}
	}
	if rep.Fairness < 0.8 {
		t.Errorf("fairness %0.3f below 0.8 for identical sessions: %v", rep.Fairness, rep.PerSessionMbps)
	}
}
