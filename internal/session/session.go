// Package session orchestrates multi-session contention runs: N
// concurrent reliable multicast sessions with distinct senders and
// (optionally overlapping) receiver sets, plus background unicast
// cross-traffic, all sharing one simulated fabric. It lays the sessions
// out on hosts deterministically, delegates the simulation to
// cluster.RunMulti, and reduces the outcome to the contention metrics
// the experiments report: per-session goodput, the Jain fairness index,
// and aggregate goodput (whose decline across session counts locates
// the collapse point).
//
// A single session with no cross traffic runs through the unchanged
// single-session cluster.Run path — byte-identical to every golden
// digest.
package session

import (
	"context"
	"fmt"
	"time"

	"rmcast/internal/cluster"
	"rmcast/internal/core"
	"rmcast/internal/metrics"
)

// Config describes one contention scenario.
type Config struct {
	// Sessions is the number of concurrent multicast sessions.
	Sessions int
	// ReceiversPer is each session's receiver-set size.
	ReceiversPer int
	// Overlap is the fraction of each session's receivers drawn from a
	// pool shared by every session, in [0,1]. The rest are private to
	// the session. Overlapping hosts run one protocol endpoint per
	// session they belong to.
	Overlap float64
	// Stagger offsets consecutive sessions' start times.
	Stagger time.Duration
	// Proto is the per-session protocol template. NumReceivers and
	// SessionTag are managed by the planner; set Rate here to enable
	// the AIMD controller.
	Proto core.Config
	// MsgSize is each session's transfer size in bytes.
	MsgSize int
	// Cluster is the fabric configuration. NumReceivers is overridden
	// with the planned host count minus one.
	Cluster cluster.Config
	// CrossFlows adds that many background unicast flows between
	// receiver hosts; each moves CrossSize bytes CrossRepeat times.
	CrossFlows  int
	CrossSize   int
	CrossRepeat int
}

// Plan lays cfg out on hosts and returns the cluster configuration
// (with NumReceivers set), the session specs, and the cross flows,
// without running anything — callers can decorate the specs (attach
// traces, delivery hooks) before handing them to cluster.RunMulti.
//
// The layout is deterministic in cfg alone: hosts 0..S-1 are the
// senders (host 0 sends session 0, matching the single-session
// convention), followed by the shared receiver pool, followed by each
// session's private receiver block.
func Plan(cfg Config) (cluster.Config, []cluster.SessionSpec, []cluster.CrossFlow, error) {
	if cfg.Sessions < 1 {
		return cluster.Config{}, nil, nil, fmt.Errorf("session: Sessions must be >= 1")
	}
	if cfg.ReceiversPer < 1 {
		return cluster.Config{}, nil, nil, fmt.Errorf("session: ReceiversPer must be >= 1")
	}
	if cfg.Overlap < 0 || cfg.Overlap > 1 {
		return cluster.Config{}, nil, nil, fmt.Errorf("session: Overlap %v out of range [0,1]", cfg.Overlap)
	}
	if cfg.MsgSize <= 0 {
		return cluster.Config{}, nil, nil, fmt.Errorf("session: MsgSize must be > 0")
	}
	if cfg.Stagger < 0 {
		return cluster.Config{}, nil, nil, fmt.Errorf("session: negative Stagger")
	}
	if cfg.CrossFlows < 0 {
		return cluster.Config{}, nil, nil, fmt.Errorf("session: negative CrossFlows")
	}
	if cfg.CrossFlows > 0 && (cfg.CrossSize <= 0 || cfg.CrossRepeat <= 0) {
		return cluster.Config{}, nil, nil, fmt.Errorf("session: cross flows need CrossSize and CrossRepeat > 0")
	}

	s := cfg.Sessions
	shared := int(float64(cfg.ReceiversPer)*cfg.Overlap + 0.5)
	if shared > cfg.ReceiversPer {
		shared = cfg.ReceiversPer
	}
	if s == 1 {
		shared = 0 // one session has nothing to share with
	}
	priv := cfg.ReceiversPer - shared

	// Hosts: senders 0..s-1, shared pool, then per-session private
	// blocks.
	poolBase := s
	privBase := poolBase + shared
	totalHosts := privBase + s*priv
	ccfg := cfg.Cluster
	ccfg.NumReceivers = totalHosts - 1

	var allReceivers []int
	specs := make([]cluster.SessionSpec, s)
	for i := 0; i < s; i++ {
		var recv []int
		for p := 0; p < shared; p++ {
			recv = append(recv, poolBase+p)
		}
		for p := 0; p < priv; p++ {
			h := privBase + i*priv + p
			recv = append(recv, h)
			allReceivers = append(allReceivers, h)
		}
		specs[i] = cluster.SessionSpec{
			Proto:     cfg.Proto,
			Sender:    i,
			Receivers: recv,
			MsgSize:   cfg.MsgSize,
			Start:     time.Duration(i) * cfg.Stagger,
		}
	}
	for p := 0; p < shared; p++ {
		allReceivers = append(allReceivers, poolBase+p)
	}

	var flows []cluster.CrossFlow
	if cfg.CrossFlows > 0 {
		if len(allReceivers) < 2 {
			return cluster.Config{}, nil, nil, fmt.Errorf("session: cross flows need at least 2 receiver hosts")
		}
		n := len(allReceivers)
		for f := 0; f < cfg.CrossFlows; f++ {
			from := allReceivers[f%n]
			to := allReceivers[(f+n/2)%n]
			if to == from {
				to = allReceivers[(f+1)%n]
			}
			flows = append(flows, cluster.CrossFlow{
				From:   from,
				To:     to,
				Size:   cfg.CrossSize,
				Repeat: cfg.CrossRepeat,
			})
		}
	}
	return ccfg, specs, flows, nil
}

// Report reduces a contention run to the metrics the experiments
// tabulate.
type Report struct {
	Sessions int
	// PerSessionMbps is each session's payload goodput.
	PerSessionMbps []float64
	// AggregateMbps is the sum of per-session goodputs.
	AggregateMbps float64
	// Fairness is the Jain index over per-session goodput.
	Fairness float64
	// Completed and Verified hold for every session.
	Completed bool
	Verified  bool
	// CrossCompleted is the total cross-traffic transfers finished.
	CrossCompleted int
	// Elapsed is the whole run, start to drain.
	Elapsed time.Duration
}

// Reduce builds a Report from a multi-session result.
func Reduce(res *cluster.MultiResult) Report {
	rep := Report{
		Sessions:  len(res.Sessions),
		Completed: res.Completed,
		Verified:  true,
		Elapsed:   res.Elapsed,
	}
	for i := range res.Sessions {
		g := res.Sessions[i].ThroughputMbps
		rep.PerSessionMbps = append(rep.PerSessionMbps, g)
		rep.AggregateMbps += g
		if !res.Sessions[i].Verified {
			rep.Verified = false
		}
	}
	rep.Fairness = metrics.Jain(rep.PerSessionMbps)
	for _, n := range res.CrossCompleted {
		rep.CrossCompleted += n
	}
	return rep
}

// Run plans and executes cfg. Sessions == 1 with no cross traffic runs
// the unchanged single-session path (cluster.Run), so the new layer
// provably cannot disturb it; everything else goes through
// cluster.RunMulti. The returned MultiResult always has one entry per
// session.
func Run(ctx context.Context, cfg Config) (*cluster.MultiResult, Report, error) {
	ccfg, specs, flows, err := Plan(cfg)
	if err != nil {
		return nil, Report{}, err
	}
	if cfg.Sessions == 1 && len(flows) == 0 {
		res, runErr := cluster.Run(ctx, ccfg, cluster.ProtoSpec(cfg.Proto), cfg.MsgSize)
		if res == nil {
			return nil, Report{}, runErr
		}
		mres := wrapSingle(res)
		return mres, Reduce(mres), runErr
	}
	res, runErr := cluster.RunMulti(ctx, ccfg, specs, flows)
	if res == nil {
		return nil, Report{}, runErr
	}
	return res, Reduce(res), runErr
}

// wrapSingle adapts a single-session Result into the MultiResult shape
// so Sessions==1 reports flow through the same reduction.
func wrapSingle(r *cluster.Result) *cluster.MultiResult {
	return &cluster.MultiResult{
		Sessions:    []cluster.SessionResult{{Result: *r}},
		Elapsed:     r.Elapsed,
		Completed:   r.Completed,
		HostStats:   r.HostStats,
		SwitchStats: r.SwitchStats,
	}
}
