package session

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"testing"

	"rmcast/internal/cluster"
	"rmcast/internal/core"
	"rmcast/internal/trace"
)

// sessionGoldenDigests are the same five digests pinned by
// internal/cluster's golden tests — every observable outcome of the
// canned single-session transfers. The session layer must reproduce
// them exactly at Sessions=1 with rate control off: the multi-session
// machinery is provably invisible to every existing scenario.
var sessionGoldenDigests = map[string]string{
	"ack":      "965a0774ad85d1d0ab6b56e029ad06045b151edd9de4b9e6cdd76be2b1a8b6ee",
	"nak-loss": "16d63797d4399da31b94d4f2657d5f964ab2dfa2374865b37a169a932e20ab7a",
	"ring":     "2d0a12e8438b1156ddc54072f3cf7179eca13435c2954245a99a372e8bb09042",
	"tree":     "3e605192852c78cad0d69372efd0063c038290b8bda9d820dc675a652ea71e6f",
	"nak-bus":  "ffdf291a9381f1d5e99167d1cedfb792f3b690b52491d2b6a0fdf12094d1ad73",
}

// sessionGoldenCases mirrors the cluster package's golden scenarios,
// phrased as session configs: one session whose receiver count and
// fabric match each canned case.
func sessionGoldenCases() map[string]func() Config {
	base := func(ccfg cluster.Config, pcfg core.Config, size int) Config {
		return Config{
			Sessions:     1,
			ReceiversPer: ccfg.NumReceivers,
			Proto:        pcfg,
			MsgSize:      size,
			Cluster:      ccfg,
		}
	}
	return map[string]func() Config{
		"ack": func() Config {
			return base(cluster.Default(30), core.Config{Protocol: core.ProtoACK, PacketSize: 50000, WindowSize: 5}, 200000)
		},
		"nak-loss": func() Config {
			ccfg := cluster.Default(30)
			ccfg.LossRate = 0.01
			return base(ccfg, core.Config{Protocol: core.ProtoNAK, PacketSize: 8000, WindowSize: 50, PollInterval: 43}, 200000)
		},
		"ring": func() Config {
			return base(cluster.Default(30), core.Config{Protocol: core.ProtoRing, PacketSize: 8000, WindowSize: 50}, 200000)
		},
		"tree": func() Config {
			return base(cluster.Default(30), core.Config{Protocol: core.ProtoTree, PacketSize: 8000, WindowSize: 20, TreeHeight: 15}, 200000)
		},
		"nak-bus": func() Config {
			ccfg := cluster.Default(8)
			ccfg.Topology = cluster.SharedBus
			return base(ccfg, core.Config{Protocol: core.ProtoNAK, PacketSize: 8000, WindowSize: 20, PollInterval: 17}, 60000)
		},
	}
}

// digestSessionRun runs one single-session config through the session
// layer and condenses the trace and result into the cluster golden hash
// (event strings, then the JSON-encoded single-session Result).
func digestSessionRun(t *testing.T, cfg Config) string {
	t.Helper()
	tb := trace.New(1 << 20)
	cfg.Cluster.Trace = tb
	res, rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !rep.Verified {
		t.Fatal("delivery not verified")
	}
	if total := tb.Total(); total > uint64(len(tb.Events())) {
		t.Fatalf("trace ring overflowed (%d events); raise its capacity", total)
	}
	h := sha256.New()
	for _, e := range tb.Events() {
		fmt.Fprintln(h, e.String())
	}
	single := res.Sessions[0].Result
	enc, err := json.Marshal(&single)
	if err != nil {
		t.Fatalf("marshal result: %v", err)
	}
	h.Write(enc)
	return hex.EncodeToString(h.Sum(nil))
}

// TestSessionGoldenEquivalence is the backward-compatibility guarantee
// for the contention layer: every canned fabric and protocol, run at
// Sessions=1 with rate control off, hashes to the exact golden digest
// the single-session engine pins — serially and (for the switched
// fabrics) on two shards.
func TestSessionGoldenEquivalence(t *testing.T) {
	for name, mk := range sessionGoldenCases() {
		name, mk := name, mk
		t.Run(name+"/serial", func(t *testing.T) {
			t.Parallel()
			got := digestSessionRun(t, mk())
			if want := sessionGoldenDigests[name]; got != want {
				t.Errorf("session-layer digest diverged for %q:\n got  %s\n want %s", name, got, want)
			}
		})
		if name == "nak-bus" {
			continue // one collision domain cannot shard
		}
		t.Run(name+"/sharded", func(t *testing.T) {
			t.Parallel()
			cfg := mk()
			cfg.Cluster.Shards = 2
			got := digestSessionRun(t, cfg)
			if want := sessionGoldenDigests[name]; got != want {
				t.Errorf("sharded session-layer digest diverged for %q:\n got  %s\n want %s", name, got, want)
			}
		})
	}
}
