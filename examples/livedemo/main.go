// Livedemo runs the protocols over REAL UDP/IP multicast: it spins up a
// sender and several receivers in one process (loopback multicast) and
// transfers messages through actual sockets — the same code path
// cmd/rmnode uses across a LAN.
//
//	go run ./examples/livedemo
//
// If your environment blocks loopback multicast the demo says so and
// exits cleanly.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"rmcast"
)

const group = "239.77.99.21:7461"

func main() {
	if !multicastWorks() {
		fmt.Println("loopback multicast is unavailable in this environment; nothing to demo")
		return
	}
	const receivers = 4
	cfg := rmcast.Config{
		Protocol:     rmcast.ProtoNAK,
		NumReceivers: receivers,
		PacketSize:   8000,
		WindowSize:   20,
		PollInterval: 17,
	}

	sender, err := rmcast.NewLiveNode(rmcast.LiveConfig{Group: group, Rank: 0, Protocol: cfg})
	if err != nil {
		log.Fatal(err)
	}
	defer sender.Close()
	var nodes []*rmcast.LiveNode
	for r := 1; r <= receivers; r++ {
		n, err := rmcast.NewLiveNode(rmcast.LiveConfig{Group: group, Rank: rmcast.NodeID(r), Protocol: cfg})
		if err != nil {
			log.Fatal(err)
		}
		defer n.Close()
		nodes = append(nodes, n)
	}

	msg := make([]byte, 1_000_000)
	for i := range msg {
		msg[i] = byte(i * 13)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	for i, n := range nodes {
		i, n := i, n
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := n.Recv(ctx)
			if err != nil {
				log.Printf("receiver %d: %v", i+1, err)
				return
			}
			fmt.Printf("receiver %d got %d bytes (intact: %v)\n", i+1, len(got), bytes.Equal(got, msg))
		}()
	}

	start := time.Now()
	if err := sender.Send(ctx, msg); err != nil {
		log.Fatal(err)
	}
	d := time.Since(start)
	wg.Wait()
	fmt.Printf("sent %d bytes to %d receivers over real UDP multicast in %v (%.1f Mbps)\n",
		len(msg), receivers, d.Round(time.Millisecond), float64(len(msg))*8/d.Seconds()/1e6)
}

// multicastWorks probes loopback multicast delivery.
func multicastWorks() bool {
	gaddr, err := net.ResolveUDPAddr("udp4", group)
	if err != nil {
		return false
	}
	recv, err := net.ListenMulticastUDP("udp4", nil, gaddr)
	if err != nil {
		return false
	}
	defer recv.Close()
	send, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4zero})
	if err != nil {
		return false
	}
	defer send.Close()
	done := make(chan bool, 1)
	go func() {
		buf := make([]byte, 16)
		recv.SetReadDeadline(time.Now().Add(400 * time.Millisecond))
		_, _, err := recv.ReadFromUDP(buf)
		done <- err == nil
	}()
	for i := 0; i < 4; i++ {
		send.WriteToUDP([]byte("probe"), gaddr)
		time.Sleep(20 * time.Millisecond)
	}
	return <-done
}
