// Filedist reproduces the paper's motivating scenario (Figure 8):
// distributing a 426502-byte file to a growing set of cluster nodes,
// comparing sequential TCP unicast (what a portability-first MPI
// implementation does) against reliable multicast.
//
//	go run ./examples/filedist
package main

import (
	"fmt"
	"log"

	"rmcast"
)

func main() {
	const fileSize = 426502 // the paper's file
	fmt.Printf("distributing a %d-byte file\n\n", fileSize)
	fmt.Printf("%-10s %-14s %-18s %s\n", "receivers", "TCP (s)", "ACK multicast (s)", "speedup")
	for _, n := range []int{1, 2, 4, 8, 16, 24, 30} {
		tcp, err := rmcast.SimulateTCP(rmcast.DefaultSim(n), rmcast.DefaultTCP(), fileSize)
		if err != nil {
			log.Fatal(err)
		}
		mc, err := rmcast.Simulate(rmcast.DefaultSim(n), rmcast.Config{
			Protocol:     rmcast.ProtoACK,
			NumReceivers: n,
			PacketSize:   50000,
			WindowSize:   2,
		}, fileSize)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10d %-14.4f %-18.4f %.1fx\n",
			n, tcp.Elapsed.Seconds(), mc.Elapsed.Seconds(),
			tcp.Elapsed.Seconds()/mc.Elapsed.Seconds())
	}
	fmt.Println("\nTCP cost grows linearly with the group; multicast stays nearly flat.")
}
