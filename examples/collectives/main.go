// Collectives demonstrates MPI-style collective operations — the
// workloads the paper's introduction motivates — built purely on
// reliable multicast sessions, running on the simulated cluster.
//
//	go run ./examples/collectives
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"rmcast"
)

func main() {
	const (
		ranks     = 8 // 1 root-capable rank + 7 others; all can multicast
		chunkSize = 16 * 1024
	)
	comm, err := rmcast.NewComm(rmcast.DefaultSim(ranks-1), rmcast.Config{
		Protocol:     rmcast.ProtoNAK,
		PacketSize:   8000,
		WindowSize:   20,
		PollInterval: 17,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Bcast: rank 0 shares a model/parameter blob with everyone.
	blob := make([]byte, 256*1024)
	for i := range blob {
		blob[i] = byte(i)
	}
	d, err := comm.Bcast(0, blob)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Bcast    %8d bytes across %d ranks: %v\n", len(blob), comm.Size(), d)

	// Scatter: the root deals a distinct chunk to every rank.
	chunks := make([][]byte, comm.Size())
	for i := range chunks {
		chunks[i] = make([]byte, chunkSize)
		for j := range chunks[i] {
			chunks[i][j] = byte(i*7 + j)
		}
	}
	_, d, err = comm.Scatter(0, chunks)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Scatter  %8d bytes per rank:            %v\n", chunkSize, d)

	// Allgather: every rank contributes a partial result.
	contribs := make([][]byte, comm.Size())
	for i := range contribs {
		contribs[i] = make([]byte, 8)
		binary.BigEndian.PutUint64(contribs[i], uint64(i*i))
	}
	gathered, d, err := comm.Allgather(contribs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Allgather %d x %d bytes:                   %v\n", comm.Size(), 8, d)
	_ = gathered

	// Reduce: sum the per-rank values at the root.
	sum, d, err := comm.Reduce(0, contribs, func(acc, x []byte) []byte {
		binary.BigEndian.PutUint64(acc, binary.BigEndian.Uint64(acc)+binary.BigEndian.Uint64(x))
		return acc
	})
	if err != nil {
		log.Fatal(err)
	}
	var want uint64
	for i := 0; i < comm.Size(); i++ {
		want += uint64(i * i)
	}
	fmt.Printf("Reduce   sum(rank²) = %d (want %d):       %v\n",
		binary.BigEndian.Uint64(sum), want, d)

	// Barrier.
	d, err = comm.Barrier()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Barrier                                    %v\n", d)
	fmt.Printf("\ntotal simulated time: %v\n", comm.Elapsed())
}
