// Quickstart: transfer one 500 KB message to 8 receivers with each of
// the four reliable multicast protocols on the simulated Ethernet
// testbed, and print the resulting communication times.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"rmcast"
)

func main() {
	const (
		receivers = 8
		size      = 500 * 1024
	)
	configs := []rmcast.Config{
		{Protocol: rmcast.ProtoACK, PacketSize: 8000, WindowSize: 2},
		{Protocol: rmcast.ProtoNAK, PacketSize: 8000, WindowSize: 20, PollInterval: 17},
		{Protocol: rmcast.ProtoRing, PacketSize: 8000, WindowSize: receivers + 10},
		{Protocol: rmcast.ProtoTree, PacketSize: 8000, WindowSize: 20, TreeHeight: 4},
	}
	fmt.Printf("transferring %d bytes to %d receivers on the simulated 100 Mbps testbed\n\n", size, receivers)
	fmt.Printf("%-8s %-12s %-12s %s\n", "proto", "time", "throughput", "sender acks processed")
	for _, cfg := range configs {
		cfg.NumReceivers = receivers
		res, err := rmcast.Simulate(rmcast.DefaultSim(receivers), cfg, size)
		if err != nil {
			log.Fatalf("%v: %v", cfg.Protocol, err)
		}
		if !res.Verified {
			log.Fatalf("%v: delivery corrupted", cfg.Protocol)
		}
		fmt.Printf("%-8v %-12v %6.1f Mbps  %d\n",
			cfg.Protocol, res.Elapsed.Round(10*time.Microsecond),
			res.ThroughputMbps, res.SenderStats.AcksReceived)
	}
	fmt.Println("\nNAK-based polling avoids the ACK implosion the first row pays for —")
	fmt.Println("compare the acks-processed column with the communication times.")
}
