// Totalorder demonstrates the totally ordered reliable multicast layer:
// eight cluster nodes all publish events concurrently, and every node
// observes the exact same global sequence — the building block for
// replicated state machines, built here on the paper's NAK-based
// reliable multicast.
//
//	go run ./examples/totalorder
package main

import (
	"fmt"
	"log"
	"time"

	"rmcast"
)

func main() {
	const members = 8 // 1 + 7 receivers
	sys, err := rmcast.NewOrderedSystem(rmcast.DefaultSim(members-1), rmcast.Config{
		Protocol:     rmcast.ProtoNAK,
		PacketSize:   8000,
		WindowSize:   20,
		PollInterval: 17,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Every member publishes two bank-ledger events at nearly the same
	// instant; interleaving is decided by the group, not the callers.
	n := 0
	for m := 0; m < sys.Size(); m++ {
		for k := 0; k < 2; k++ {
			sys.Submit(time.Duration(k)*50*time.Microsecond, m,
				[]byte(fmt.Sprintf("account[%d] += %d", m, (k+1)*100)))
			n++
		}
	}
	elapsed, err := sys.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%d events from %d concurrent publishers, ordered in %v:\n\n", n, sys.Size(), elapsed)
	for _, d := range sys.Deliveries(0) {
		fmt.Printf("  #%-3d (from member %d, local %d): %s\n", d.GlobalSeq, d.ID.Member, d.ID.LocalSeq, d.Payload)
	}

	// Prove the point: every member saw the identical sequence.
	agree := true
	ref := sys.Deliveries(0)
	for m := 1; m < sys.Size(); m++ {
		for i, d := range sys.Deliveries(m) {
			if d.ID != ref[i].ID {
				agree = false
			}
		}
	}
	fmt.Printf("\nall %d members delivered the identical sequence: %v\n", sys.Size(), agree)
}
