package rmcast

import (
	"context"
	"testing"
	"time"
)

// The facade tests exercise the public API end to end; deep behavior is
// covered by the internal packages' suites.

func TestSimulateFacade(t *testing.T) {
	res, err := Simulate(DefaultSim(6), Config{
		Protocol: ProtoNAK, NumReceivers: 6,
		PacketSize: 8000, WindowSize: 20, PollInterval: 17,
	}, 200_000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || !res.Verified {
		t.Fatalf("completed=%v verified=%v", res.Completed, res.Verified)
	}
	if res.ThroughputMbps <= 0 || res.ThroughputMbps > 100 {
		t.Errorf("implausible throughput %.1f Mbps on a 100 Mbps LAN", res.ThroughputMbps)
	}
}

func TestSimulateTCPFacade(t *testing.T) {
	res, err := SimulateTCP(DefaultSim(3), DefaultTCP(), 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatal("tcp baseline corrupted delivery")
	}
}

func TestSimulateRawUDPFacade(t *testing.T) {
	res, err := SimulateRawUDP(DefaultSim(3), 8000, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("raw UDP baseline did not complete on a clean network")
	}
}

// TestRunFacade exercises the unified Run entry point across all three
// spec kinds and checks each result carries a populated Metrics
// snapshot — the per-protocol guarantee the metrics layer makes.
func TestRunFacade(t *testing.T) {
	ctx := context.Background()
	specs := map[string]Spec{
		"ack": ProtocolSpec(Config{
			Protocol: ProtoACK, NumReceivers: 4, PacketSize: 8000, WindowSize: 4,
		}),
		"tcp":    TCPSpec(DefaultTCP()),
		"rawudp": RawUDPSpec(8000),
	}
	for name, spec := range specs {
		res, err := Run(ctx, DefaultSim(4), spec, 100_000)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Metrics.TotalSent() == 0 || res.Metrics.TotalReceived() == 0 {
			t.Errorf("%s: Metrics not populated: %+v", name, res.Metrics)
		}
		if res.Metrics.SenderBusy <= 0 {
			t.Errorf("%s: no sender CPU-busy time recorded", name)
		}
		if len(res.Metrics.Completion) == 0 {
			t.Errorf("%s: no completion latencies recorded", name)
		}
	}
	if _, err := Run(ctx, DefaultSim(2), Spec{}, 100); err == nil {
		t.Error("zero Spec accepted")
	}
}

// TestRunCanceledFacade checks a canceled context aborts a simulation.
func TestRunCanceledFacade(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	spec := ProtocolSpec(Config{
		Protocol: ProtoNAK, NumReceivers: 20, PacketSize: 1000, WindowSize: 20, PollInterval: 17,
	})
	if _, err := Run(ctx, DefaultSim(20), spec, 4<<20); err == nil {
		t.Error("canceled run returned no error")
	}
}

func TestParseProtocolFacade(t *testing.T) {
	p, err := ParseProtocol("ring")
	if err != nil || p != ProtoRing {
		t.Fatalf("ParseProtocol(ring) = %v, %v", p, err)
	}
}

func TestExperimentRegistryFacade(t *testing.T) {
	exps := Experiments()
	want := map[string]bool{
		"table1": true, "table2": true, "table3": true,
		"fig8": true, "fig9": true, "fig10": true, "fig11": true,
		"fig12": true, "fig13": true, "fig14": true, "fig15": true,
		"fig16": true, "fig17": true, "fig18": true, "fig19": true,
		"fig20": true, "fig21": true,
		"ablation_media": true, "ablation_suppress": true,
		"ablation_loss": true, "ablation_relay": true,
	}
	for _, e := range exps {
		delete(want, e.ID)
	}
	if len(want) != 0 {
		t.Errorf("missing experiments: %v", want)
	}
	rep, err := RunExperiment(context.Background(), "table1", ExperimentOptions{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ID != "table1" {
		t.Errorf("report id = %q", rep.ID)
	}
	if _, err := RunExperiment(context.Background(), "bogus", ExperimentOptions{}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestCommFacade(t *testing.T) {
	comm, err := NewComm(DefaultSim(3), Config{
		Protocol: ProtoACK, PacketSize: 4000, WindowSize: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	d, err := comm.Bcast(0, make([]byte, 10_000))
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 || d > time.Second {
		t.Errorf("implausible bcast time %v", d)
	}
}

// TestPaperHeadlineOrdering is the repository's single most important
// assertion: the paper's final conclusion holds on this implementation.
// For large messages: NAK ≥ ring ≥ tree ≥ ACK.
func TestPaperHeadlineOrdering(t *testing.T) {
	const n, size = 30, 2 * 1024 * 1024
	run := func(cfg Config) float64 {
		t.Helper()
		cfg.NumReceivers = n
		res, err := Simulate(DefaultSim(n), cfg, size)
		if err != nil {
			t.Fatal(err)
		}
		return res.ThroughputMbps
	}
	nak := run(Config{Protocol: ProtoNAK, PacketSize: 8000, WindowSize: 50, PollInterval: 43})
	ring := run(Config{Protocol: ProtoRing, PacketSize: 8000, WindowSize: 50})
	tree := run(Config{Protocol: ProtoTree, PacketSize: 8000, WindowSize: 20, TreeHeight: 15})
	ack := run(Config{Protocol: ProtoACK, PacketSize: 50000, WindowSize: 5})
	const tol = 0.98 // ties within 2% satisfy the paper's ≥
	if nak < ring*tol || ring < tree*tol || tree < ack*tol {
		t.Errorf("ordering violated: NAK=%.1f ring=%.1f tree=%.1f ACK=%.1f Mbps", nak, ring, tree, ack)
	}
	if ack >= nak {
		t.Errorf("ACK (%.1f) should be strictly worst vs NAK (%.1f)", ack, nak)
	}
}

// TestSmallMessageEquivalence checks the paper's small-message claim:
// ACK, NAK and ring behave identically for single-packet messages.
func TestSmallMessageEquivalence(t *testing.T) {
	const n = 12
	times := map[Protocol]time.Duration{}
	for _, cfg := range []Config{
		{Protocol: ProtoACK, PacketSize: 8000, WindowSize: 2},
		{Protocol: ProtoNAK, PacketSize: 8000, WindowSize: 20, PollInterval: 17},
		{Protocol: ProtoRing, PacketSize: 8000, WindowSize: n + 5},
	} {
		cfg.NumReceivers = n
		res, err := Simulate(DefaultSim(n), cfg, 256)
		if err != nil {
			t.Fatal(err)
		}
		times[cfg.Protocol] = res.Elapsed
	}
	base := times[ProtoACK]
	for p, d := range times {
		ratio := float64(d) / float64(base)
		if ratio < 0.95 || ratio > 1.05 {
			t.Errorf("%v small-message time %v deviates from ACK's %v", p, d, base)
		}
	}
	// And the tree with real height is slower (user-level relay).
	cfg := Config{Protocol: ProtoTree, NumReceivers: n, PacketSize: 8000, WindowSize: 20, TreeHeight: n}
	res, err := Simulate(DefaultSim(n), cfg, 256)
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed <= base {
		t.Errorf("tree H=%d (%v) should be slower than ACK (%v) for small messages", n, res.Elapsed, base)
	}
}
