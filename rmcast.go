// Package rmcast is a Go library reproducing "An Empirical Study of
// Reliable Multicast Protocols over Ethernet-Connected Networks"
// (Lane, Scott, Yuan — ICPP 2001): four families of reliable multicast
// protocols implemented over IP multicast/UDP, a discrete-event
// simulator of the paper's 31-host two-switch 100 Mbps testbed, a live
// transport over real UDP multicast, and a benchmark harness that
// regenerates every table and figure of the paper's evaluation.
//
// The four protocols (see DESIGN.md for their mechanics):
//
//   - ProtoACK:  every receiver acknowledges every packet
//   - ProtoNAK:  negative acknowledgments plus periodic polling
//   - ProtoRing: rotating acknowledgment responsibility
//   - ProtoTree: flat-tree acknowledgment aggregation of height H
//
// Two ways to run them:
//
// Simulated (deterministic, laptop-scale, the paper's testbed):
//
//	cfg := rmcast.Config{Protocol: rmcast.ProtoNAK, PacketSize: 8000,
//		WindowSize: 50, PollInterval: 43}
//	res, err := rmcast.Run(ctx, rmcast.DefaultSim(30), rmcast.ProtocolSpec(cfg), 2<<20)
//	fmt.Println(res.Elapsed, res.ThroughputMbps, res.Metrics.Retransmissions)
//
// Live (real UDP multicast on a LAN; one process per node):
//
//	node, err := rmcast.NewLiveNode(rmcast.LiveConfig{
//		Group: "239.77.12.5:7412", Rank: 0, Protocol: cfg})
//	err = node.Send(ctx, payload) // rank 0
//	msg, err := node.Recv(ctx)    // ranks 1..N
//
// The experiment harness behind cmd/rmbench is exposed via
// Experiments and RunExperiment.
package rmcast

import (
	"context"

	"rmcast/internal/cluster"
	"rmcast/internal/core"
	"rmcast/internal/exp"
	"rmcast/internal/faults"
	"rmcast/internal/live"
	"rmcast/internal/metrics"
	"rmcast/internal/order"
	"rmcast/internal/topo"
	"rmcast/internal/unicast"
	"rmcast/internal/workload"
)

// Protocol selects a reliable multicast protocol family.
type Protocol = core.Protocol

// The studied protocols.
const (
	ProtoACK    = core.ProtoACK
	ProtoNAK    = core.ProtoNAK
	ProtoRing   = core.ProtoRing
	ProtoTree   = core.ProtoTree
	ProtoRawUDP = core.ProtoRawUDP
)

// ParseProtocol converts a protocol name ("ack", "nak", "ring", "tree",
// "rawudp") to its Protocol value.
func ParseProtocol(s string) (Protocol, error) { return core.ParseProtocol(s) }

// Config carries the protocol parameters shared by the sender and all
// receivers of a session.
type Config = core.Config

// Catchup selects where a late joiner's catch-up snapshots come from
// (Config.JoinCatchup): the sender itself, or a delegate peer.
type Catchup = core.Catchup

// The catch-up sources.
const (
	CatchupSender = core.CatchupSender
	CatchupPeer   = core.CatchupPeer
)

// ParseCatchup converts a catch-up source name ("sender", "peer") to
// its Catchup value.
func ParseCatchup(s string) (Catchup, error) { return core.ParseCatchup(s) }

// NodeID identifies a session participant; 0 is the sender.
type NodeID = core.NodeID

// SimConfig describes the simulated testbed (topology, link rate, CPU
// cost model, buffer sizes, loss injection).
type SimConfig = cluster.Config

// SimResult reports one simulated transfer.
type SimResult = cluster.Result

// Simulated topologies.
const (
	TopologyTwoSwitch    = cluster.TwoSwitch
	TopologySingleSwitch = cluster.SingleSwitch
	TopologySharedBus    = cluster.SharedBus
)

// TopoSpec is a declarative switch fabric: single switch, the paper's
// two-switch testbed, a star-of-stars, or a two-level fat-tree, with
// per-link speeds and trunk oversubscription. Assign one to
// SimConfig.Topo to replace the legacy Topology enum; parse compact
// spec strings like "fattree:4x8x32@1g,trunk=100m" with ParseTopo.
type TopoSpec = topo.Spec

// ParseTopo parses a topology spec string (see internal/topo for the
// grammar): "single", "two-switch", "star:4x16@100m,trunk=1g",
// "fattree:4x8x32@1g,trunk=100m".
func ParseTopo(s string) (TopoSpec, error) { return topo.Parse(s) }

// ScaleForTopology fills cfg's topology-derived scaling knobs (tree
// chain height/layout from the switch domains, multi-ring partitioning
// at ≥256 receivers) where the caller left them zero. Call it before
// Run when simulating large fabrics.
func ScaleForTopology(cfg Config, sim SimConfig) Config {
	return cluster.ScaleForTopology(cfg, sim)
}

// DefaultSim returns the paper's calibrated Figure 7 testbed with n
// receivers.
func DefaultSim(n int) SimConfig { return cluster.Default(n) }

// Metrics is the allocation-light counter snapshot attached to every
// SimResult and queryable from a LiveNode: per-packet-type send/receive
// counts, retransmissions, NAKs, ejections, buffer-overflow drops,
// sender CPU-busy time, and per-receiver completion latency.
type Metrics = metrics.Metrics

// MetricsHistogram is a snapshotted latency histogram inside Metrics.
type MetricsHistogram = metrics.HistogramSnapshot

// Spec selects what a unified Run executes: one of the reliable
// multicast protocols, the sequential-TCP baseline, or the raw-UDP
// baseline. Build one with ProtocolSpec, TCPSpec, or RawUDPSpec.
type Spec = cluster.Spec

// ProtocolSpec runs one of the studied reliable multicast protocols
// (or ProtoRawUDP) under cfg.
func ProtocolSpec(cfg Config) Spec { return cluster.ProtoSpec(cfg) }

// TCPSpec runs the Figure 8 baseline: one TCP-like unicast stream per
// receiver, sequentially.
func TCPSpec(tcp TCPConfig) Spec { return cluster.TCPSpec(tcp) }

// RawUDPSpec runs the Figure 9 baseline: unreliable UDP multicast in
// packetSize-byte datagrams.
func RawUDPSpec(packetSize int) Spec { return cluster.RawUDPSpec(packetSize) }

// Run transfers one size-byte message on a fresh simulated testbed and
// reports timing, throughput, per-layer statistics, and Metrics. It is
// the single entry point behind Simulate, SimulateTCP, and
// SimulateRawUDP; ctx cancels the simulation at its next checkpoint,
// returning the partial result alongside ctx's error.
func Run(ctx context.Context, sim SimConfig, spec Spec, size int) (*SimResult, error) {
	return cluster.Run(ctx, sim, spec, size)
}

// Simulate transfers one size-byte message under cfg on a fresh
// simulated testbed and reports timing, throughput, and per-layer
// statistics.
//
// Deprecated: use Run with ProtocolSpec, which adds cancellation.
func Simulate(sim SimConfig, cfg Config, size int) (*SimResult, error) {
	return Run(context.Background(), sim, ProtocolSpec(cfg), size)
}

// PartialResult is the structured error a session returns when it ends
// without full delivery to the original membership: receivers ejected
// by failure detection (Config.MaxRetries), declared failed at the
// session deadline (Config.SessionDeadline), or outstanding when the
// run aborted. Errors returned by Simulate and LiveNode.Send unwrap to
// it via errors.As.
type PartialResult = core.PartialResult

// FaultSchedule is a declarative, deterministic set of faults the
// simulator applies to a run: receiver crashes, stall/resume windows,
// link flaps, and burst-loss windows, triggered at a virtual time or at
// a fraction of transfer progress. Assign one to SimConfig.Faults.
type FaultSchedule = faults.Schedule

// FaultEvent is one scheduled fault.
type FaultEvent = faults.Event

// Fault kinds. FaultJoin and FaultLeave are membership churn: a join
// rank starts the run absent (Config.Absent is derived from the
// schedule) and asks to be admitted at the trigger; a leave rank asks
// for a graceful departure.
const (
	FaultCrash = faults.Crash
	FaultStall = faults.Stall
	FaultFlap  = faults.Flap
	FaultBurst = faults.Burst
	FaultJoin  = faults.Join
	FaultLeave = faults.Leave
)

// ParseFaultSchedule parses a comma-separated fault spec, e.g.
// "crash:7@0.5,stall:3@20ms+40ms,burst:*@0.5+5ms:0.3,join:5@0.3". See
// the internal/faults Parse documentation for the grammar.
func ParseFaultSchedule(spec string) (*FaultSchedule, error) { return faults.Parse(spec) }

// TCPConfig parameterizes the TCP-like reliable unicast baseline.
type TCPConfig = unicast.Config

// DefaultTCP returns Linux-2.2-flavored TCP baseline parameters.
func DefaultTCP() TCPConfig { return unicast.DefaultConfig() }

// SimulateTCP transfers one message to every receiver sequentially over
// TCP-like unicast streams — the Figure 8 baseline.
//
// Deprecated: use Run with TCPSpec, which adds cancellation.
func SimulateTCP(sim SimConfig, tcp TCPConfig, size int) (*SimResult, error) {
	return Run(context.Background(), sim, TCPSpec(tcp), size)
}

// SimulateRawUDP blasts one message over unreliable UDP multicast — the
// Figure 9 baseline.
//
// Deprecated: use Run with RawUDPSpec, which adds cancellation.
func SimulateRawUDP(sim SimConfig, packetSize, size int) (*SimResult, error) {
	return Run(context.Background(), sim, RawUDPSpec(packetSize), size)
}

// LiveConfig describes a node on the live UDP-multicast transport.
type LiveConfig = live.Config

// LiveNode is a live protocol endpoint; see NewLiveNode.
type LiveNode = live.Node

// NewLiveNode opens a live node: rank 0 sends with Send, other ranks
// receive with Recv. All nodes of a session must share the group
// address and protocol configuration.
func NewLiveNode(cfg LiveConfig) (*LiveNode, error) { return live.NewNode(cfg) }

// Comm provides MPI-style collective operations (Bcast, Scatter,
// Allgather, Barrier, Reduce) built purely on reliable multicast,
// running on the simulated cluster.
type Comm = workload.Comm

// NewComm builds a communicator over a fresh simulated cluster.
func NewComm(sim SimConfig, cfg Config) (*Comm, error) { return workload.NewComm(sim, cfg) }

// OrderedSystem provides totally ordered reliable multicast — many
// senders, one agreed delivery order at every member — built on the
// studied protocols (the Chang-Maxemchuk / Whetten lineage the paper's
// ring protocol descends from). Simulated-cluster only.
type OrderedSystem = order.System

// OrderedDelivery is one total-order delivery.
type OrderedDelivery = order.Delivery

// NewOrderedSystem builds a total-order group over a fresh simulated
// cluster using cfg's reliability scheme underneath.
func NewOrderedSystem(sim SimConfig, cfg Config) (*OrderedSystem, error) {
	return order.NewSystem(sim, cfg)
}

// Experiment is one reproducible paper experiment (a table or figure).
type Experiment = exp.Experiment

// ExperimentOptions tunes an experiment run.
type ExperimentOptions = exp.Options

// ExperimentReport is a rendered experiment result.
type ExperimentReport = exp.Report

// Experiments lists every registered experiment: the paper's Tables 1-3
// and Figures 8-21, plus the ablations in DESIGN.md.
func Experiments() []Experiment { return exp.All() }

// RunExperiment executes one experiment by id ("fig10", "table3", ...).
// Independent simulation points fan out over opts.Parallel workers; ctx
// cancels the sweep between (and within) points.
func RunExperiment(ctx context.Context, id string, opts ExperimentOptions) (*ExperimentReport, error) {
	e, err := exp.ByID(id)
	if err != nil {
		return nil, err
	}
	return e.Run(ctx, opts)
}
